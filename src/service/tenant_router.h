// Per-tenant sharded admission with weighted fair shedding — the layer
// between the daemon's streaming ingest and the ThreadPool's bounded
// AdmissionQueue.
//
// Tenants are hashed across independent shards (each with its own lock and
// its slice of the aggregate capacity), so ingest from many connections
// never contends on a global mutex.  Within a shard:
//
//   * records queue FIFO per tenant;
//   * the dispatcher pops weighted-fair (the active tenant with the
//     smallest virtual service time, i.e. serviced work / weight — a
//     flooding tenant cannot starve a well-behaved one even before any
//     shedding starts);
//   * when the shard is full, admission sheds from the most-loaded tenant
//     — largest queued records / weight — provided it is more loaded than
//     the arriving record's tenant would become by queuing (otherwise the
//     arrival itself is the fair victim), dropping that tenant's
//     EARLIEST-queued record (head drop: the oldest record is the one
//     whose flow bound is already lost).
//
// The shard owns a DegradationLadder sample loop via TenantRouter::tick():
// utilization (aggregate depth / capacity) plus the pool watchdog's stall
// flag drive the rung, and the rung changes what push() and tick() do (see
// degradation.h for the ladder itself).
//
// Every record handed to push() reaches exactly one outcome: admitted (and
// later popped by the dispatcher) or shed/rejected with a reason — either
// returned synchronously or, for queued records trimmed later, surfaced
// through tick()'s eviction list.  The conservation law
//   accepted == popped + shed_from_queue + depth
// holds in every stats() snapshot, per shard and in aggregate; the chaos
// campaign asserts it after every trial.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/annotations.h"
#include "src/runtime/interference.h"
#include "src/runtime/job.h"
#include "src/runtime/mutex.h"
#include "src/service/degradation.h"
#include "src/service/record.h"

namespace pjsched::service {

using Clock = runtime::Clock;

struct RouterConfig {
  std::size_t shards = 8;
  /// Aggregate queued-record bound, split evenly across shards.
  std::size_t capacity = 4096;
  /// Weight for tenants never passed to set_weight().
  double default_weight = 1.0;
  LadderConfig ladder;
};

/// Why a record left the router without being dispatched.
enum class ShedReason : std::uint8_t {
  kFairShare,      ///< full shard: weighted fair eviction
  kShedNew,        ///< shed-new rung: over-share arrival dropped at ingest
  kShedQueued,     ///< shed-queued rung: queued backlog trimmed to share
  kRejectTenant,   ///< reject-tenant rung: offending tenant refused
  kRejectDrain,    ///< drain rung: nothing new accepted
};

inline const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kFairShare: return "fair-share";
    case ShedReason::kShedNew: return "shed-new";
    case ShedReason::kShedQueued: return "shed-queued";
    case ShedReason::kRejectTenant: return "reject-tenant";
    case ShedReason::kRejectDrain: return "reject-drain";
  }
  return "?";
}

/// A record inside the router: the parsed submission plus its ingest
/// timestamp (flow time is measured from ingest, not pool submission — the
/// router queue is part of the job's flow) and a global arrival sequence
/// number (the earliest-queued tie-break).
struct QueuedRecord {
  JobRecord record;
  Clock::time_point ingest{};
  std::uint64_t seq = 0;
};

/// A record the router gave up on, with the reason.
struct ShedRecord {
  QueuedRecord item;
  ShedReason reason{};
};

/// Outcome of TenantRouter::push for the *pushed* record (a different
/// record evicted on its behalf comes back via the eviction list).
enum class PushOutcome : std::uint8_t { kAdmitted, kShed };

class TenantRouter {
 public:
  explicit TenantRouter(const RouterConfig& config);
  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Sets a tenant's fair-share weight (default_weight until called).
  /// Cheap and rare: takes the tenant's shard lock.
  void set_weight(const std::string& tenant, double weight);

  /// Ingests one record.  kAdmitted: the record is queued (a *different*
  /// record may have been evicted to make room — appended to *evictions
  /// with its reason).  kShed: the pushed record itself was dropped;
  /// *reason says why.  `evictions` and `reason` must be non-null.
  PushOutcome push(JobRecord record, std::vector<ShedRecord>* evictions,
                   ShedReason* reason);

  /// Per-record outcome of admit_batch (the batch analog of push()'s
  /// return + *reason).
  struct BatchOutcome {
    PushOutcome outcome = PushOutcome::kAdmitted;
    ShedReason reason{};  ///< valid when outcome == kShed
  };

  /// Caller-owned scratch reused across admit_batch calls so the
  /// steady-state ingest path allocates nothing after warmup.
  struct BatchScratch {
    std::vector<std::uint32_t> shard_index;  ///< per record
    std::vector<std::uint32_t> order;        ///< record indices, shard-grouped
    std::vector<std::uint32_t> bucket;       ///< prefix offsets (shards + 1)
    std::vector<std::uint32_t> cursor;       ///< counting-sort write heads
    std::string offender;                    ///< reject-tenant snapshot
  };

  /// Batched ingest (the sharded-io fast path): admits every record of
  /// `records`, grouping by shard so each shard lock is taken ONCE per
  /// batch instead of once per record.  Records are grouped stably and
  /// processed per shard in batch order with sequence tickets assigned in
  /// batch order, so the outcome of every record — including which queued
  /// record a full shard evicts, via the shared admit_locked core — is
  /// bit-identical to calling push() on each record in order (records of
  /// different shards never interact; pinned by test).  One ingest
  /// timestamp covers the whole batch.
  ///
  /// A record is moved from on admission; one shed at the door is left
  /// intact so the caller can account it by tenant.  *outcomes is resized
  /// to the batch; evicted records are appended to *evictions as in push().
  void admit_batch(std::span<JobRecord> records,
                   std::vector<BatchOutcome>* outcomes,
                   std::vector<ShedRecord>* evictions, BatchScratch* scratch);

  /// Dispatcher side: pops the weighted-fair next record.  Shards are
  /// scanned round-robin from a rotating cursor so no shard is structurally
  /// favored.  Returns false when every shard is empty.
  bool try_pop(QueuedRecord* out);

  /// Maintenance tick: feeds (utilization, stalled) to the ladder, applies
  /// rung side effects — trimming over-share backlogs at shed-queued and
  /// above, electing/clearing the reject-tenant offender — and appends any
  /// trimmed records to *evictions.  Returns the rung after the tick.
  Rung tick(bool stalled, std::vector<ShedRecord>* evictions);

  /// Terminal: every future push is rejected (kRejectDrain); queued
  /// records stay poppable so the dispatcher can drain.
  void begin_drain();

  Rung rung() const;
  /// The tenant currently refused at reject-tenant, or "" outside it.
  std::string offender() const;

  std::size_t depth() const;

  /// Aggregate accounting.  Each shard contributes one coherent snapshot
  /// (its counters and depth come from a single lock hold, so its books
  /// balance exactly); records never migrate between shards, so the sums
  /// below balance too: accepted == popped + shed_from_queue + depth,
  /// where shed_from_queue = shed_fair_share + shed_queued.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t popped = 0;
    std::uint64_t shed_fair_share = 0;     ///< queued records evicted by a
                                           ///< full-shard fair decision
    std::uint64_t shed_arrival_full = 0;   ///< arrivals dropped at a full
                                           ///< shard (nobody else over share)
    std::uint64_t shed_new = 0;            ///< arrivals dropped at shed-new+
    std::uint64_t shed_queued = 0;         ///< queued records trimmed by tick
    std::uint64_t rejected_tenant = 0;     ///< refused: offending tenant
    std::uint64_t rejected_drain = 0;      ///< refused: draining
    std::size_t depth = 0;
    std::size_t peak_depth = 0;            ///< max over per-shard peaks

    /// Records shed/rejected by any path.  Conservation: every record ever
    /// pushed == popped + total_shed() + depth, because accepted ==
    /// popped + shed_fair_share + shed_queued + depth (only accepted
    /// records sit in queues) and the remaining counters were never queued.
    std::uint64_t total_shed() const {
      return shed_fair_share + shed_arrival_full + shed_new + shed_queued +
             rejected_tenant + rejected_drain;
    }
  };
  Stats stats() const;

 private:
  struct Tenant {
    double weight;
    std::deque<QueuedRecord> queue;
    /// Weighted-fair virtual service time: serviced work / weight.
    double virtual_time = 0.0;
  };

  struct alignas(runtime::kDestructiveInterference) RouterShard {
    mutable runtime::Mutex mu;
    std::unordered_map<std::string, Tenant> tenants PJSCHED_GUARDED_BY(mu);
    std::size_t depth PJSCHED_GUARDED_BY(mu) = 0;
    std::size_t peak_depth PJSCHED_GUARDED_BY(mu) = 0;
    /// Virtual clock: the service time of the last pop; a tenant becoming
    /// active is caught up to it so idling never banks credit.
    double vclock PJSCHED_GUARDED_BY(mu) = 0.0;
    // Per-shard slices of the Stats counters (depth/peak above).
    std::uint64_t accepted PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t popped PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t shed_fair_share PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t shed_arrival_full PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t shed_new PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t shed_queued PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t rejected_tenant PJSCHED_GUARDED_BY(mu) = 0;
    std::uint64_t rejected_drain PJSCHED_GUARDED_BY(mu) = 0;
  };

  std::size_t shard_of(const std::string& tenant) const;
  Tenant& tenant_slot(RouterShard& shard, const std::string& name)
      PJSCHED_REQUIRES(shard.mu);
  /// The admission core shared bit-for-bit by push() and admit_batch():
  /// rung gates, weighted-fair full-shard eviction, activation catch-up,
  /// enqueue + accounting.  Moves from `queued` only on kAdmitted; on
  /// kShed the record is left intact for the caller.  `offender` is the
  /// reject-tenant snapshot taken under ladder_mu_ BEFORE this shard lock
  /// (lock order: ladder_mu_ -> shard.mu), or nullptr outside that rung.
  PushOutcome admit_locked(RouterShard& shard, QueuedRecord& queued, Rung rung,
                           const std::string* offender,
                           std::vector<ShedRecord>* evictions,
                           ShedReason* reason) PJSCHED_REQUIRES(shard.mu);
  /// Weighted fair share (in records) of `tenant` within its shard.
  double fair_share_locked(const RouterShard& shard,
                           const Tenant& tenant) const
      PJSCHED_REQUIRES(shard.mu);
  /// The most-over-share tenant of a shard (largest queued/weight among
  /// those above share), or nullptr.  `out_name` receives its key.
  Tenant* most_over_share_locked(RouterShard& shard,
                                 const std::string** out_name)
      PJSCHED_REQUIRES(shard.mu);
  /// The most-loaded tenant of a shard (largest queued/weight, no share
  /// threshold; ties to the earliest-queued head), or nullptr when every
  /// queue is empty.  The full-shard eviction rule compares against this.
  Tenant* most_loaded_locked(RouterShard& shard, const std::string** out_name)
      PJSCHED_REQUIRES(shard.mu);
  /// Trims every over-share tenant of `shard` back to its fair share.
  void trim_shard_locked(RouterShard& shard,
                         std::vector<ShedRecord>* evictions)
      PJSCHED_REQUIRES(shard.mu);

  const RouterConfig config_;
  const std::size_t shard_capacity_;
  std::vector<std::unique_ptr<RouterShard>> shards_;

  /// Ladder + offender election, sampled by tick() only; push() reads the
  /// rung through a relaxed atomic mirror so ingest never takes this lock.
  mutable runtime::Mutex ladder_mu_;
  DegradationLadder ladder_ PJSCHED_GUARDED_BY(ladder_mu_);
  std::string offender_ PJSCHED_GUARDED_BY(ladder_mu_);
  /// Mirror of ladder_.rung() for lock-free reads on the ingest path.
  std::atomic<std::uint8_t> rung_mirror_{0};

  /// Global arrival sequence (earliest-queued tie-break across shards).
  std::atomic<std::uint64_t> next_seq_{0};
  /// Round-robin pop cursor over shards.
  std::atomic<std::uint64_t> pop_cursor_{0};
};

}  // namespace pjsched::service
