#include "src/service/degradation.h"

#include <algorithm>

namespace pjsched::service {

Rung DegradationLadder::target_up(double u) const {
  if (u >= config_.reject_enter) return Rung::kRejectTenant;
  if (u >= config_.shed_queued_enter) return Rung::kShedQueued;
  if (u >= config_.shed_new_enter) return Rung::kShedNew;
  return Rung::kNormal;
}

Rung DegradationLadder::target_down(double u) const {
  if (u >= config_.reject_exit) return Rung::kRejectTenant;
  if (u >= config_.shed_queued_exit) return Rung::kShedQueued;
  if (u >= config_.shed_new_exit) return Rung::kShedNew;
  return Rung::kNormal;
}

Rung DegradationLadder::on_sample(double utilization, bool stalled) {
  ++samples_;
  if (rung_ == Rung::kDrain) return rung_;
  const double u = std::clamp(utilization, 0.0, 1.0);

  if (stalled) {
    // A wedged pool is unambiguous overload: escalate one rung now (capped
    // below drain) rather than waiting out the up-hold.  Recovery still
    // goes through the hysteretic down path once progress resumes.
    ++stall_escalations_;
    up_streak_ = down_streak_ = 0;
    if (rung_ < Rung::kRejectTenant) {
      rung_ = static_cast<Rung>(static_cast<std::uint8_t>(rung_) + 1);
      ++transitions_;
    }
    return rung_;
  }

  const Rung up = target_up(u);
  const Rung down = target_down(u);
  if (up > rung_) {
    down_streak_ = 0;
    if (++up_streak_ >= config_.up_hold) {
      // Jump straight to the indicated rung: a spike past two enter
      // thresholds should not serve a hold at every intermediate rung.
      rung_ = up;
      ++transitions_;
      up_streak_ = 0;
    }
  } else if (down < rung_) {
    up_streak_ = 0;
    if (++down_streak_ >= config_.down_hold) {
      // Step down one rung at a time: recovery re-earns each rung.
      rung_ = static_cast<Rung>(static_cast<std::uint8_t>(rung_) - 1);
      ++transitions_;
      down_streak_ = 0;
    }
  } else {
    // Inside the hysteresis band of the current rung: hold position.
    up_streak_ = down_streak_ = 0;
  }
  return rung_;
}

}  // namespace pjsched::service
