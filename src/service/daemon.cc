#include "src/service/daemon.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/types.h"
#include "src/runtime/dag_executor.h"
#include "src/runtime/replayer.h"

namespace pjsched::service {

namespace {

/// Spins `units` of work in small quanta, polling for cooperative
/// cancellation between quanta so a deadline or shutdown cancels a long
/// job promptly instead of after its whole body.
void spin_cancellable(runtime::TaskContext& ctx, double units,
                      double ns_per_unit) {
  constexpr double kQuantum = 64.0;
  while (units > 0.0) {
    if (ctx.poll_deadline()) return;
    const double step = units < kQuantum ? units : kQuantum;
    runtime::spin_for_units(static_cast<dag::Work>(step < 1.0 ? 1.0 : step),
                            ns_per_unit);
    units -= step;
  }
}

}  // namespace

Daemon::Daemon(const DaemonConfig& config)
    : config_(config), pool_(config.pool), router_(config.router) {
  std::string error;
  if (!config_.unix_socket_path.empty()) {
    unix_listen_fd_ = listen_unix(config_.unix_socket_path, &error);
    if (unix_listen_fd_ < 0)
      throw std::runtime_error("pjschedd: " + error);
  }
  if (config_.tcp_port >= 0) {
    std::uint16_t bound = 0;
    tcp_listen_fd_ = listen_tcp(static_cast<std::uint16_t>(config_.tcp_port),
                                &error, &bound);
    if (tcp_listen_fd_ < 0) {
      close_fd(unix_listen_fd_);
      throw std::runtime_error("pjschedd: " + error);
    }
    tcp_port_ = bound;
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
  maintenance_ = std::thread([this] { maintenance_main(); });
  if (unix_listen_fd_ >= 0 || tcp_listen_fd_ >= 0)
    io_ = std::thread([this] { io_main(); });
}

Daemon::~Daemon() {
  router_.begin_drain();
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  if (io_.joinable()) io_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (maintenance_.joinable()) maintenance_.join();

  // Anything still queued in the router was accepted but will never be
  // dispatched: give each record its terminal outcome (rejected: the
  // daemon is going away) so the books balance even on an abrupt stop.
  QueuedRecord rec;
  while (router_.try_pop(&rec)) account_shed(rec, ShedReason::kRejectDrain);

  // Drain the pool (every dispatched job reaches a terminal outcome), then
  // take the final reap so tenant counters cover all of them.
  pool_.shutdown();
  reap_finished();

  close_fd(unix_listen_fd_);
  close_fd(tcp_listen_fd_);
  if (!config_.unix_socket_path.empty())
    ::unlink(config_.unix_socket_path.c_str());
}

void Daemon::set_weight(const std::string& tenant, double weight) {
  router_.set_weight(tenant, weight);
}

PushOutcome Daemon::submit_record(JobRecord record) {
  const std::string tenant = record.tenant;  // push() consumes the record
  {
    runtime::MutexLock lock(state_mu_);
    ++tenants_[tenant].submitted;
  }
  std::vector<ShedRecord> evictions;
  ShedReason reason{};
  const PushOutcome out = router_.push(std::move(record), &evictions, &reason);
  if (!evictions.empty()) account_sheds(evictions);
  if (out == PushOutcome::kShed) account_shed_reason(tenant, reason);
  work_cv_.notify_one();
  return out;
}

bool Daemon::feed_line(std::string_view line) {
  JobRecord record;
  std::string error;
  switch (parse_record(line, &record, &error)) {
    case ParseStatus::kEmpty:
      return true;
    case ParseStatus::kMalformed:
      quarantine_line(line, error);
      return false;
    case ParseStatus::kRecord:
      break;
  }
  {
    runtime::MutexLock lock(state_mu_);
    ++feed_.records;
  }
  submit_record(std::move(record));
  return true;
}

std::size_t Daemon::feed_replay_file(const std::string& path,
                                     const std::string& tenant,
                                     double time_scale) {
  const core::Instance instance = runtime::load_replay_instance(path);
  const Clock::time_point start = Clock::now();
  std::size_t submitted = 0;
  for (const core::JobSpec& job : instance.jobs) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (time_scale > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(job.arrival * time_scale));
      while (Clock::now() < due && !stop_.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    JobRecord record;
    record.tenant = tenant;
    record.work = std::min(static_cast<double>(job.graph.total_work()),
                           kMaxWork);
    record.fanout = static_cast<unsigned>(std::clamp<std::size_t>(
        job.graph.node_count(), 1, kMaxFanout));
    record.weight = job.weight;
    submit_record(std::move(record));
    ++submitted;
  }
  return submitted;
}

void Daemon::dispatch(QueuedRecord rec) {
  runtime::SubmitOptions opts;
  opts.weight = rec.record.weight;
  if (rec.record.deadline_ms > 0) {
    // The deadline budget runs from ingest: time already spent queued in
    // the router is gone.  A record whose budget is exhausted before
    // dispatch expires here, without ever touching the pool.
    const auto budget = std::chrono::milliseconds(rec.record.deadline_ms);
    const auto spent = Clock::now() - rec.ingest;
    if (spent >= budget) {
      runtime::MutexLock lock(state_mu_);
      ++tenants_[rec.record.tenant].deadline_expired;
      return;
    }
    opts.deadline = budget - spent;
  }

  const double work = rec.record.work;
  const unsigned fanout = std::max(1u, rec.record.fanout);
  const double per = work / static_cast<double>(fanout);
  const double ns = config_.ns_per_unit;
  runtime::JobHandle handle = pool_.submit(
      [per, fanout, ns](runtime::TaskContext& ctx) {
        if (fanout > 1) {
          runtime::WaitGroup wg;
          for (unsigned i = 1; i < fanout; ++i)
            ctx.spawn(
                [per, ns](runtime::TaskContext& c) {
                  spin_cancellable(c, per, ns);
                },
                wg);
          spin_cancellable(ctx, per, ns);
          ctx.wait_help(wg);
        } else {
          spin_cancellable(ctx, per, ns);
        }
      },
      opts);

  runtime::MutexLock lock(state_mu_);
  pending_.push_back(
      PendingJob{std::move(handle), std::move(rec.record.tenant), rec.ingest});
}

void Daemon::dispatcher_main() {
  const std::size_t window = config_.dispatch_window > 0
                                 ? config_.dispatch_window
                                 : static_cast<std::size_t>(pool_.workers()) * 4;
  QueuedRecord rec;
  while (true) {
    if (reap_finished() < window && router_.try_pop(&rec)) {
      dispatch(std::move(rec));
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    runtime::MutexLock lock(work_mu_);
    work_cv_.wait_for(work_mu_, std::chrono::milliseconds(1));
  }
}

void Daemon::maintenance_main() {
  std::vector<ShedRecord> evictions;
  while (!stop_.load(std::memory_order_acquire)) {
    // Watchdog signal: any new stall dump since the last tick counts as a
    // stalled sample (the pool's watchdog defines "no progress").
    const std::uint64_t dumps = pool_.stats().watchdog_dumps;
    const bool stalled =
        dumps > last_watchdog_dumps_.load(std::memory_order_relaxed);
    last_watchdog_dumps_.store(dumps, std::memory_order_relaxed);

    evictions.clear();
    router_.tick(stalled, &evictions);
    if (!evictions.empty()) account_sheds(evictions);
    reap_finished();

    std::this_thread::sleep_for(config_.tick_interval);
  }
}

void Daemon::account_shed_reason(const std::string& tenant,
                                 ShedReason reason) {
  runtime::MutexLock lock(state_mu_);
  TenantCounters& t = tenants_[tenant];
  switch (reason) {
    case ShedReason::kFairShare:
    case ShedReason::kShedNew:
    case ShedReason::kShedQueued:
      ++t.shed;
      break;
    case ShedReason::kRejectTenant:
    case ShedReason::kRejectDrain:
      ++t.rejected;
      break;
  }
}

void Daemon::account_shed(const QueuedRecord& rec, ShedReason reason) {
  account_shed_reason(rec.record.tenant, reason);
}

void Daemon::account_sheds(const std::vector<ShedRecord>& sheds) {
  for (const ShedRecord& s : sheds) account_shed(s.item, s.reason);
}

std::size_t Daemon::reap_finished() {
  runtime::MutexLock lock(state_mu_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingJob& p = pending_[i];
    if (!p.handle->finished()) {
      if (kept != i) pending_[kept] = std::move(p);
      ++kept;
      continue;
    }
    TenantCounters& t = tenants_[p.tenant];
    switch (p.handle->outcome()) {
      case runtime::JobOutcome::kCompleted: {
        ++t.completed;
        const double flow = std::chrono::duration<double>(
                                p.handle->completion_time() - p.ingest)
                                .count();
        t.max_flow_seconds = std::max(t.max_flow_seconds, flow);
        t.sum_flow_seconds += flow;
        ++t.flow_samples;
        break;
      }
      case runtime::JobOutcome::kFailed:
        ++t.failed;
        break;
      case runtime::JobOutcome::kDeadlineExpired:
        ++t.deadline_expired;
        break;
      case runtime::JobOutcome::kShed:
        ++t.shed;
        break;
      case runtime::JobOutcome::kRejected:
        ++t.rejected;
        break;
      case runtime::JobOutcome::kRunning:
        break;  // unreachable: finished() implies terminal
    }
  }
  pending_.resize(kept);
  return kept;
}

bool Daemon::drain(std::chrono::milliseconds timeout) {
  router_.begin_drain();
  const Clock::time_point deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    const std::size_t queued = router_.depth();
    const std::size_t inflight = reap_finished();
    if (queued == 0 && inflight == 0) return true;
    work_cv_.notify_one();  // keep the dispatcher popping
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

void Daemon::quarantine_line(std::string_view line, const std::string& why) {
  runtime::MutexLock lock(state_mu_);
  ++feed_.malformed;
  std::string sample(line.substr(0, 96));
  sample += "  <- ";
  sample += why;
  quarantine_.push_back(std::move(sample));
  while (quarantine_.size() > config_.quarantine_keep) quarantine_.pop_front();
}

DaemonSnapshot Daemon::snapshot() const {
  DaemonSnapshot snap;
  snap.rung = router_.rung();
  snap.router = router_.stats();
  snap.pool = pool_.stats();
  snap.admission = pool_.admission_stats();
  runtime::MutexLock lock(state_mu_);
  snap.feed = feed_;
  snap.tenants = tenants_;
  snap.inflight = pending_.size();
  snap.quarantine.assign(quarantine_.begin(), quarantine_.end());
  return snap;
}

std::string Daemon::metrics_text() const {
  const DaemonSnapshot s = snapshot();
  std::ostringstream out;
  out << "pjschedd: rung=" << to_string(s.rung)
      << " router[depth=" << s.router.depth << " accepted=" << s.router.accepted
      << " popped=" << s.router.popped << " shed=" << s.router.total_shed()
      << " peak=" << s.router.peak_depth << "]"
      << " pool[executed=" << s.pool.tasks_executed
      << " shed=" << s.pool.jobs_shed << " rejected=" << s.pool.jobs_rejected
      << " expired=" << s.pool.jobs_deadline_expired
      << " failed=" << s.pool.jobs_failed << "]"
      << " feed[records=" << s.feed.records << " malformed=" << s.feed.malformed
      << " oversize=" << s.feed.oversize << " conns=" << s.feed.connections
      << " timeouts=" << s.feed.read_timeouts << "]"
      << " inflight=" << s.inflight << "\n";
  for (const auto& [name, t] : s.tenants) {
    out << "  tenant " << name << ": submitted=" << t.submitted
        << " completed=" << t.completed << " failed=" << t.failed
        << " expired=" << t.deadline_expired << " shed=" << t.shed
        << " rejected=" << t.rejected << " max_flow_s=" << t.max_flow_seconds;
    if (t.flow_samples > 0)
      out << " mean_flow_s=" << (t.sum_flow_seconds /
                                 static_cast<double>(t.flow_samples));
    out << "\n";
  }
  for (const std::string& q : s.quarantine) out << "  quarantined: " << q << "\n";
  return out.str();
}

void Daemon::io_main() {
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  const LineReader::Sink sink = [this](std::string_view line, bool oversized) {
    if (oversized) {
      runtime::MutexLock lock(state_mu_);
      ++feed_.oversize;
      return;
    }
    feed_line(line);
  };

  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    if (unix_listen_fd_ >= 0)
      pfds.push_back(pollfd{unix_listen_fd_, POLLIN, 0});
    if (tcp_listen_fd_ >= 0) pfds.push_back(pollfd{tcp_listen_fd_, POLLIN, 0});
    const std::size_t first_conn = pfds.size();
    for (const Connection& c : conns) pfds.push_back(pollfd{c.fd, POLLIN, 0});

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/50);
    if (rc < 0 && errno != EINTR) break;
    const Clock::time_point now = Clock::now();

    // Listeners first: accept (or refuse over the connection bound).
    for (std::size_t i = 0; i < first_conn; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int fd = accept_client(pfds[i].fd);
      if (fd < 0) continue;
      if (conns.size() >= config_.max_connections) {
        close_fd(fd);
        runtime::MutexLock lock(state_mu_);
        ++feed_.refused;
        continue;
      }
      Connection c;
      c.fd = fd;
      c.last_activity = now;
      conns.push_back(std::move(c));
      runtime::MutexLock lock(state_mu_);
      ++feed_.connections;
    }

    // Connections: read what is ready, close what is dead or silent.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = conns[i];
      bool open = true;
      const short revents =
          first_conn + i < pfds.size() ? pfds[first_conn + i].revents : 0;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[4096];
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
          c.last_activity = now;
          c.reader.feed(buf, static_cast<std::size_t>(n), sink);
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          // Disconnect: a trailing unterminated line is NOT a record — it
          // could be the front half of one — so it is quarantined, never
          // submitted.
          if (c.reader.finish([](std::string_view, bool) {})) {
            runtime::MutexLock lock(state_mu_);
            ++feed_.partial;
          }
          open = false;
          runtime::MutexLock lock(state_mu_);
          ++feed_.disconnects;
        }
      } else if (now - c.last_activity > config_.read_deadline) {
        open = false;
        runtime::MutexLock lock(state_mu_);
        ++feed_.read_timeouts;
      }
      if (open) {
        if (kept != i) conns[kept] = std::move(c);
        ++kept;
      } else {
        close_fd(c.fd);
      }
    }
    conns.resize(kept);
  }
  for (Connection& c : conns) close_fd(c.fd);
}

}  // namespace pjsched::service
