#include "src/service/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/types.h"
#include "src/runtime/dag_executor.h"
#include "src/runtime/replayer.h"

namespace pjsched::service {

namespace {

/// Entries per parse_batch scan on the io shards: large enough that a full
/// 16 KB read buffer of minimal records drains in a few scans, small
/// enough that the per-shard scratch stays cache-resident.
constexpr std::size_t kParseBatchEntries = 256;

/// Reservoir capacity for the per-tenant p99 flow export: tenants are few
/// and long-lived, so a modest reservoir keeps snapshot cost low while the
/// estimate stays exact for the first 1024 completions.
constexpr std::size_t kTenantFlowReservoir = 1024;

int make_wake_pipe(int* rd, int* wr) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  *rd = fds[0];
  *wr = fds[1];
  return 0;
}

void wake_shard(int wake_wr) {
  const char byte = 'w';
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_wr, &byte, 1);
}

/// Sends without ever blocking the io loop: a peer that requests metrics
/// but refuses to read the reply would otherwise wedge its whole shard.
/// False = would block or dead; the caller closes the connection.
bool write_nonblocking(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Spins `units` of work in small quanta, polling for cooperative
/// cancellation between quanta so a deadline or shutdown cancels a long
/// job promptly instead of after its whole body.
void spin_cancellable(runtime::TaskContext& ctx, double units,
                      double ns_per_unit) {
  constexpr double kQuantum = 64.0;
  while (units > 0.0) {
    if (ctx.poll_deadline()) return;
    const double step = units < kQuantum ? units : kQuantum;
    runtime::spin_for_units(static_cast<dag::Work>(step < 1.0 ? 1.0 : step),
                            ns_per_unit);
    units -= step;
  }
}

}  // namespace

Daemon::Daemon(const DaemonConfig& config)
    : config_(config), pool_(config.pool), router_(config.router) {
  started_ = Clock::now();
  std::string error;
  if (!config_.unix_socket_path.empty()) {
    unix_listen_fd_ = listen_unix(config_.unix_socket_path, &error);
    if (unix_listen_fd_ < 0)
      throw std::runtime_error("pjschedd: " + error);
  }
  if (config_.tcp_port >= 0) {
    std::uint16_t bound = 0;
    tcp_listen_fd_ = listen_tcp(static_cast<std::uint16_t>(config_.tcp_port),
                                &error, &bound);
    if (tcp_listen_fd_ < 0) {
      close_fd(unix_listen_fd_);
      throw std::runtime_error("pjschedd: " + error);
    }
    tcp_port_ = bound;
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
  maintenance_ = std::thread([this] { maintenance_main(); });
  if (unix_listen_fd_ >= 0 || tcp_listen_fd_ >= 0) {
    std::size_t n = config_.io_threads;
    if (n == 0)
      n = std::max<std::size_t>(1, std::thread::hardware_concurrency() / 4);
    io_shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<IoShard>();
      if (make_wake_pipe(&shard->wake_rd, &shard->wake_wr) != 0) {
        // Tear down what exists; the daemon cannot run half-sharded.
        for (auto& s : io_shards_) {
          close_fd(s->wake_rd);
          close_fd(s->wake_wr);
        }
        close_fd(unix_listen_fd_);
        close_fd(tcp_listen_fd_);
        stop_.store(true, std::memory_order_release);
        work_cv_.notify_all();
        dispatcher_.join();
        maintenance_.join();
        pool_.shutdown();
        throw std::runtime_error("pjschedd: wake pipe creation failed");
      }
      io_shards_.push_back(std::move(shard));
    }
    for (std::size_t i = 0; i < n; ++i)
      io_shards_[i]->thread = std::thread([this, i] { io_shard_main(i); });
  }
}

Daemon::~Daemon() {
  router_.begin_drain();
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& shard : io_shards_) wake_shard(shard->wake_wr);
  for (auto& shard : io_shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    close_fd(shard->wake_rd);
    close_fd(shard->wake_wr);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  if (maintenance_.joinable()) maintenance_.join();

  // Anything still queued in the router was accepted but will never be
  // dispatched: give each record its terminal outcome (rejected: the
  // daemon is going away) so the books balance even on an abrupt stop.
  QueuedRecord rec;
  while (router_.try_pop(&rec)) account_shed(rec, ShedReason::kRejectDrain);

  // Drain the pool (every dispatched job reaches a terminal outcome), then
  // take the final reap so tenant counters cover all of them.
  pool_.shutdown();
  reap_finished();

  close_fd(unix_listen_fd_);
  close_fd(tcp_listen_fd_);
  if (!config_.unix_socket_path.empty())
    ::unlink(config_.unix_socket_path.c_str());
}

void Daemon::set_weight(const std::string& tenant, double weight) {
  router_.set_weight(tenant, weight);
}

PushOutcome Daemon::submit_record(JobRecord record) {
  const std::string tenant = record.tenant;  // push() consumes the record
  {
    runtime::MutexLock lock(state_mu_);
    ++tenants_[tenant].submitted;
  }
  std::vector<ShedRecord> evictions;
  ShedReason reason{};
  const PushOutcome out = router_.push(std::move(record), &evictions, &reason);
  if (!evictions.empty()) account_sheds(evictions);
  if (out == PushOutcome::kShed) account_shed_reason(tenant, reason);
  work_cv_.notify_one();
  return out;
}

bool Daemon::feed_line(std::string_view line) {
  JobRecord record;
  std::string error;
  switch (parse_record(line, &record, &error)) {
    case ParseStatus::kEmpty:
      return true;
    case ParseStatus::kCommand: {
      // In-process feeds have no reply channel; count and move on.
      runtime::MutexLock lock(state_mu_);
      ++feed_.commands;
      return true;
    }
    case ParseStatus::kMalformed:
    case ParseStatus::kOversize:  // parse_record folds this into kMalformed
      quarantine_line(line, error);
      return false;
    case ParseStatus::kRecord:
      break;
  }
  {
    runtime::MutexLock lock(state_mu_);
    ++feed_.records;
  }
  submit_record(std::move(record));
  return true;
}

std::size_t Daemon::feed_replay_file(const std::string& path,
                                     const std::string& tenant,
                                     double time_scale) {
  const core::Instance instance = runtime::load_replay_instance(path);
  const Clock::time_point start = Clock::now();
  std::size_t submitted = 0;
  for (const core::JobSpec& job : instance.jobs) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (time_scale > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(job.arrival * time_scale));
      while (Clock::now() < due && !stop_.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    JobRecord record;
    record.tenant = tenant;
    record.work = std::min(static_cast<double>(job.graph.total_work()),
                           kMaxWork);
    record.fanout = static_cast<unsigned>(std::clamp<std::size_t>(
        job.graph.node_count(), 1, kMaxFanout));
    record.weight = job.weight;
    submit_record(std::move(record));
    ++submitted;
  }
  return submitted;
}

void Daemon::dispatch(QueuedRecord rec) {
  runtime::SubmitOptions opts;
  opts.weight = rec.record.weight;
  if (rec.record.deadline_ms > 0) {
    // The deadline budget runs from ingest: time already spent queued in
    // the router is gone.  A record whose budget is exhausted before
    // dispatch expires here, without ever touching the pool.
    const auto budget = std::chrono::milliseconds(rec.record.deadline_ms);
    const auto spent = Clock::now() - rec.ingest;
    if (spent >= budget) {
      runtime::MutexLock lock(state_mu_);
      ++tenants_[rec.record.tenant].deadline_expired;
      return;
    }
    opts.deadline = budget - spent;
  }

  const double work = rec.record.work;
  const unsigned fanout = std::max(1u, rec.record.fanout);
  const double per = work / static_cast<double>(fanout);
  const double ns = config_.ns_per_unit;
  runtime::JobHandle handle = pool_.submit(
      [per, fanout, ns](runtime::TaskContext& ctx) {
        if (fanout > 1) {
          runtime::WaitGroup wg;
          for (unsigned i = 1; i < fanout; ++i)
            ctx.spawn(
                [per, ns](runtime::TaskContext& c) {
                  spin_cancellable(c, per, ns);
                },
                wg);
          spin_cancellable(ctx, per, ns);
          ctx.wait_help(wg);
        } else {
          spin_cancellable(ctx, per, ns);
        }
      },
      opts);

  runtime::MutexLock lock(state_mu_);
  pending_.push_back(
      PendingJob{std::move(handle), std::move(rec.record.tenant), rec.ingest});
}

void Daemon::dispatcher_main() {
  const std::size_t window = config_.dispatch_window > 0
                                 ? config_.dispatch_window
                                 : static_cast<std::size_t>(pool_.workers()) * 4;
  QueuedRecord rec;
  while (true) {
    if (reap_finished() < window && router_.try_pop(&rec)) {
      dispatch(std::move(rec));
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    runtime::MutexLock lock(work_mu_);
    work_cv_.wait_for(work_mu_, std::chrono::milliseconds(1));
  }
}

void Daemon::maintenance_main() {
  std::vector<ShedRecord> evictions;
  while (!stop_.load(std::memory_order_acquire)) {
    // Watchdog signal: any new stall dump since the last tick counts as a
    // stalled sample (the pool's watchdog defines "no progress").
    const std::uint64_t dumps = pool_.stats().watchdog_dumps;
    const bool stalled =
        dumps > last_watchdog_dumps_.load(std::memory_order_relaxed);
    last_watchdog_dumps_.store(dumps, std::memory_order_relaxed);

    evictions.clear();
    router_.tick(stalled, &evictions);
    if (!evictions.empty()) account_sheds(evictions);
    reap_finished();

    std::this_thread::sleep_for(config_.tick_interval);
  }
}

namespace {

/// The reason->counter mapping shared by the per-record and batched
/// accounting paths (callers hold state_mu_).
void bump_shed_counter(TenantCounters& t, ShedReason reason) {
  switch (reason) {
    case ShedReason::kFairShare:
    case ShedReason::kShedNew:
    case ShedReason::kShedQueued:
      ++t.shed;
      break;
    case ShedReason::kRejectTenant:
    case ShedReason::kRejectDrain:
      ++t.rejected;
      break;
  }
}

}  // namespace

void Daemon::account_shed_reason(const std::string& tenant,
                                 ShedReason reason) {
  runtime::MutexLock lock(state_mu_);
  bump_shed_counter(tenants_[tenant], reason);
}

void Daemon::account_shed(const QueuedRecord& rec, ShedReason reason) {
  account_shed_reason(rec.record.tenant, reason);
}

void Daemon::account_sheds(const std::vector<ShedRecord>& sheds) {
  for (const ShedRecord& s : sheds) account_shed(s.item, s.reason);
}

std::size_t Daemon::reap_finished() {
  runtime::MutexLock lock(state_mu_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingJob& p = pending_[i];
    if (!p.handle->finished()) {
      if (kept != i) pending_[kept] = std::move(p);
      ++kept;
      continue;
    }
    TenantCounters& t = tenants_[p.tenant];
    switch (p.handle->outcome()) {
      case runtime::JobOutcome::kCompleted: {
        ++t.completed;
        const double flow = std::chrono::duration<double>(
                                p.handle->completion_time() - p.ingest)
                                .count();
        t.max_flow_seconds = std::max(t.max_flow_seconds, flow);
        t.sum_flow_seconds += flow;
        ++t.flow_samples;
        auto fit = flow_.find(p.tenant);
        if (fit == flow_.end()) {
          metrics::StreamingFlowStats::Options opts;
          opts.reservoir = kTenantFlowReservoir;
          fit = flow_.emplace(p.tenant, metrics::StreamingFlowStats(opts))
                    .first;
        }
        // Arrival 0 / completion `flow` records the flow value itself.
        fit->second.record(t.flow_samples, 0.0, 1.0, flow);
        break;
      }
      case runtime::JobOutcome::kFailed:
        ++t.failed;
        break;
      case runtime::JobOutcome::kDeadlineExpired:
        ++t.deadline_expired;
        break;
      case runtime::JobOutcome::kShed:
        ++t.shed;
        break;
      case runtime::JobOutcome::kRejected:
        ++t.rejected;
        break;
      case runtime::JobOutcome::kRunning:
        break;  // unreachable: finished() implies terminal
    }
  }
  pending_.resize(kept);
  return kept;
}

bool Daemon::drain(std::chrono::milliseconds timeout) {
  router_.begin_drain();
  const Clock::time_point deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    const std::size_t queued = router_.depth();
    const std::size_t inflight = reap_finished();
    if (queued == 0 && inflight == 0) return true;
    work_cv_.notify_one();  // keep the dispatcher popping
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

void Daemon::quarantine_line(std::string_view line, std::string_view why,
                             bool count_malformed) {
  runtime::MutexLock lock(state_mu_);
  if (count_malformed) ++feed_.malformed;
  std::string sample(line.substr(0, 96));
  sample += "  <- ";
  sample += why;
  quarantine_.push_back(std::move(sample));
  while (quarantine_.size() > config_.quarantine_keep) quarantine_.pop_front();
}

DaemonSnapshot Daemon::snapshot() const {
  DaemonSnapshot snap;
  snap.rung = router_.rung();
  snap.router = router_.stats();
  snap.pool = pool_.stats();
  snap.admission = pool_.admission_stats();
  runtime::MutexLock lock(state_mu_);
  snap.feed = feed_;
  snap.tenants = tenants_;
  snap.inflight = pending_.size();
  snap.quarantine.assign(quarantine_.begin(), quarantine_.end());
  for (const auto& [name, stats] : flow_) {
    const auto it = snap.tenants.find(name);
    if (it != snap.tenants.end())
      it->second.p99_flow_seconds = stats.summary().p99;
  }
  return snap;
}

std::string Daemon::metrics_text() const {
  const DaemonSnapshot s = snapshot();
  std::ostringstream out;
  out << "pjschedd: rung=" << to_string(s.rung)
      << " router[depth=" << s.router.depth << " accepted=" << s.router.accepted
      << " popped=" << s.router.popped << " shed=" << s.router.total_shed()
      << " peak=" << s.router.peak_depth << "]"
      << " pool[executed=" << s.pool.tasks_executed
      << " shed=" << s.pool.jobs_shed << " rejected=" << s.pool.jobs_rejected
      << " expired=" << s.pool.jobs_deadline_expired
      << " failed=" << s.pool.jobs_failed << "]"
      << " feed[records=" << s.feed.records << " malformed=" << s.feed.malformed
      << " oversize=" << s.feed.oversize << " conns=" << s.feed.connections
      << " timeouts=" << s.feed.read_timeouts
      << " slow_drip=" << s.feed.slow_drip << " batches=" << s.feed.batches
      << "]"
      << " inflight=" << s.inflight << "\n";
  for (const auto& [name, t] : s.tenants) {
    out << "  tenant " << name << ": submitted=" << t.submitted
        << " completed=" << t.completed << " failed=" << t.failed
        << " expired=" << t.deadline_expired << " shed=" << t.shed
        << " rejected=" << t.rejected << " max_flow_s=" << t.max_flow_seconds;
    if (t.flow_samples > 0)
      out << " mean_flow_s=" << (t.sum_flow_seconds /
                                 static_cast<double>(t.flow_samples));
    out << "\n";
  }
  for (const std::string& q : s.quarantine) out << "  quarantined: " << q << "\n";
  return out.str();
}

std::string Daemon::metrics_machine() const {
  const DaemonSnapshot s = snapshot();
  std::ostringstream out;
  out << "rung " << to_string(s.rung) << "\n"
      << "uptime_seconds "
      << std::chrono::duration<double>(Clock::now() - started_).count() << "\n"
      << "inflight " << s.inflight << "\n"
      << "router.depth " << s.router.depth << "\n"
      << "router.peak_depth " << s.router.peak_depth << "\n"
      << "router.accepted " << s.router.accepted << "\n"
      << "router.popped " << s.router.popped << "\n"
      << "router.shed_fair_share " << s.router.shed_fair_share << "\n"
      << "router.shed_arrival_full " << s.router.shed_arrival_full << "\n"
      << "router.shed_new " << s.router.shed_new << "\n"
      << "router.shed_queued " << s.router.shed_queued << "\n"
      << "router.rejected_tenant " << s.router.rejected_tenant << "\n"
      << "router.rejected_drain " << s.router.rejected_drain << "\n"
      << "pool.tasks_executed " << s.pool.tasks_executed << "\n"
      << "pool.jobs_failed " << s.pool.jobs_failed << "\n"
      << "pool.jobs_deadline_expired " << s.pool.jobs_deadline_expired << "\n"
      << "pool.jobs_shed " << s.pool.jobs_shed << "\n"
      << "pool.jobs_rejected " << s.pool.jobs_rejected << "\n"
      << "ingest.records " << s.feed.records << "\n"
      << "ingest.batches " << s.feed.batches << "\n"
      << "ingest.malformed " << s.feed.malformed << "\n"
      << "ingest.oversize " << s.feed.oversize << "\n"
      << "ingest.partial " << s.feed.partial << "\n"
      << "ingest.connections " << s.feed.connections << "\n"
      << "ingest.refused " << s.feed.refused << "\n"
      << "ingest.disconnects " << s.feed.disconnects << "\n"
      << "ingest.read_timeouts " << s.feed.read_timeouts << "\n"
      << "ingest.slow_drip " << s.feed.slow_drip << "\n"
      << "ingest.commands " << s.feed.commands << "\n";
  for (const auto& [name, t] : s.tenants) {
    const std::string prefix = "tenant." + name + ".";
    out << prefix << "submitted " << t.submitted << "\n"
        << prefix << "completed " << t.completed << "\n"
        << prefix << "failed " << t.failed << "\n"
        << prefix << "deadline_expired " << t.deadline_expired << "\n"
        << prefix << "shed " << t.shed << "\n"
        << prefix << "rejected " << t.rejected << "\n"
        << prefix << "max_flow_seconds " << t.max_flow_seconds << "\n"
        << prefix << "mean_flow_seconds "
        << (t.flow_samples > 0
                ? t.sum_flow_seconds / static_cast<double>(t.flow_samples)
                : 0.0)
        << "\n"
        << prefix << "p99_flow_seconds " << t.p99_flow_seconds << "\n";
  }
  out << "end\n";
  return out.str();
}

void Daemon::accept_ready(int listen_fd) {
  const int fd = accept_client(listen_fd);
  if (fd < 0) return;
  // order: relaxed — the bound is advisory (a race can overshoot by one);
  // exact accounting happens under state_mu_ below.
  if (open_conns_.load(std::memory_order_relaxed) >= config_.max_connections) {
    close_fd(fd);
    runtime::MutexLock lock(state_mu_);
    ++feed_.refused;
    return;
  }
  // Balance onto the least-loaded shard; ties go to the lowest index.
  std::size_t target = 0;
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < io_shards_.size(); ++i) {
    // order: relaxed — an approximate balance signal, not a publication.
    const std::size_t load = io_shards_[i]->load.load(std::memory_order_relaxed);
    if (load < best) {
      best = load;
      target = i;
    }
  }
  // order: relaxed — counters only; the fd itself is published under mu.
  open_conns_.fetch_add(1, std::memory_order_relaxed);
  io_shards_[target]->load.fetch_add(1, std::memory_order_relaxed);
  {
    runtime::MutexLock lock(io_shards_[target]->mu);
    io_shards_[target]->incoming.push_back(fd);
  }
  wake_shard(io_shards_[target]->wake_wr);
  runtime::MutexLock lock(state_mu_);
  ++feed_.connections;
}

bool Daemon::drain_parsed(Connection& c, std::span<ParsedRecord> parsed,
                          std::vector<JobRecord>& batch,
                          std::vector<TenantRouter::BatchOutcome>& outcomes,
                          std::vector<ShedRecord>& evictions,
                          TenantRouter::BatchScratch& scratch) {
  bool keep = true;
  for (;;) {
    const BatchParse bp = c.buffer.parse(parsed);
    if (bp.produced == 0 && bp.consumed == 0) break;
    if (bp.consumed > 0) c.last_progress = Clock::now();
    std::uint64_t oversize = 0;
    bool want_metrics = false;
    batch.clear();
    for (std::size_t i = 0; i < bp.produced; ++i) {
      ParsedRecord& entry = parsed[i];
      switch (entry.status) {
        case ParseStatus::kRecord:
          batch.push_back(std::move(entry.record));
          break;
        case ParseStatus::kMalformed:
          quarantine_line(entry.line,
                          entry.error != nullptr ? entry.error : "malformed");
          break;
        case ParseStatus::kOversize:
          ++oversize;
          break;
        case ParseStatus::kCommand:
          want_metrics = true;
          break;
        case ParseStatus::kEmpty:
          break;  // parse_batch never emits these
      }
    }
    if (oversize > 0) {
      runtime::MutexLock lock(state_mu_);
      feed_.oversize += oversize;
    }
    admit_records(batch, outcomes, evictions, scratch);
    if (want_metrics) {
      {
        runtime::MutexLock lock(state_mu_);
        ++feed_.commands;
      }
      // Reply AFTER admitting the records that preceded the command, so a
      // client that writes records then `metrics` sees its own submissions
      // counted.  A peer that will not read its reply is closed, never
      // waited on.
      if (!write_nonblocking(c.fd, metrics_machine())) keep = false;
    }
  }
  return keep;
}

void Daemon::admit_records(std::vector<JobRecord>& records,
                           std::vector<TenantRouter::BatchOutcome>& outcomes,
                           std::vector<ShedRecord>& evictions,
                           TenantRouter::BatchScratch& scratch) {
  if (records.empty()) return;
  {
    // Books first: `submitted` covers the whole batch before any outcome
    // can land, so a concurrent snapshot never sees terminal > submitted.
    runtime::MutexLock lock(state_mu_);
    feed_.records += records.size();
    ++feed_.batches;
    for (const JobRecord& r : records) ++tenants_[r.tenant].submitted;
  }
  evictions.clear();
  router_.admit_batch({records.data(), records.size()}, &outcomes, &evictions,
                      &scratch);
  bool admitted_any = false;
  {
    runtime::MutexLock lock(state_mu_);
    for (const ShedRecord& s : evictions)
      bump_shed_counter(tenants_[s.item.record.tenant], s.reason);
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (outcomes[i].outcome == PushOutcome::kShed)
        bump_shed_counter(tenants_[records[i].tenant], outcomes[i].reason);
      else
        admitted_any = true;
    }
  }
  if (admitted_any) work_cv_.notify_one();
  records.clear();
}

void Daemon::io_shard_main(std::size_t shard_index) {
  IoShard& self = *io_shards_[shard_index];
  const bool acceptor = shard_index == 0;
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  // Parse/admission scratch, reused across batches: the steady-state
  // ingest path allocates nothing here after warmup.
  std::vector<ParsedRecord> parsed(kParseBatchEntries);
  std::vector<JobRecord> batch;
  batch.reserve(kParseBatchEntries);
  std::vector<TenantRouter::BatchOutcome> outcomes;
  std::vector<ShedRecord> evictions;
  TenantRouter::BatchScratch scratch;

  while (!stop_.load(std::memory_order_acquire)) {
    // Adopt connections the acceptor handed over.
    {
      runtime::MutexLock lock(self.mu);
      for (const int fd : self.incoming) {
        Connection c;
        c.fd = fd;
        c.last_activity = c.last_progress = Clock::now();
        conns.push_back(std::move(c));
      }
      self.incoming.clear();
    }

    pfds.clear();
    pfds.push_back(pollfd{self.wake_rd, POLLIN, 0});
    std::size_t first_listener = pfds.size();
    std::size_t first_conn = first_listener;
    if (acceptor) {
      if (unix_listen_fd_ >= 0)
        pfds.push_back(pollfd{unix_listen_fd_, POLLIN, 0});
      if (tcp_listen_fd_ >= 0)
        pfds.push_back(pollfd{tcp_listen_fd_, POLLIN, 0});
      first_conn = pfds.size();
    }
    for (const Connection& c : conns) pfds.push_back(pollfd{c.fd, POLLIN, 0});

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/50);
    if (rc < 0 && errno != EINTR) break;
    const Clock::time_point now = Clock::now();

    if ((pfds[0].revents & POLLIN) != 0) {
      // Drain the wake pipe (nonblocking; content is meaningless).
      char sink[64];
      while (::read(self.wake_rd, sink, sizeof(sink)) > 0) {
      }
    }
    if (acceptor)
      for (std::size_t i = first_listener; i < first_conn; ++i)
        if ((pfds[i].revents & POLLIN) != 0) accept_ready(pfds[i].fd);

    std::size_t kept = 0;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = conns[i];
      bool open = true;
      const short revents =
          first_conn + i < pfds.size() ? pfds[first_conn + i].revents : 0;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const std::size_t cap = c.buffer.tail_capacity();
        const ssize_t n =
            cap > 0 ? ::read(c.fd, c.buffer.tail(), cap) : ssize_t{-1};
        if (cap == 0) errno = EAGAIN;  // defensive; parse always frees space
        if (n > 0) {
          c.last_activity = now;
          c.buffer.commit(static_cast<std::size_t>(n));
          open = drain_parsed(c, {parsed.data(), parsed.size()}, batch,
                              outcomes, evictions, scratch);
        } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          // Disconnect: a trailing unterminated line is NOT a record — it
          // could be the front half of one — so it is counted as a
          // partial, never submitted.
          const bool partial = c.buffer.has_partial();
          open = false;
          runtime::MutexLock lock(state_mu_);
          if (partial) ++feed_.partial;
          ++feed_.disconnects;
        }
      } else if (now - c.last_activity > config_.read_deadline) {
        open = false;
        runtime::MutexLock lock(state_mu_);
        ++feed_.read_timeouts;
      }
      if (open && c.buffer.has_partial()) {
        // Slow-dribble guard: bytes are flowing but no line has completed
        // within the read deadline, or the partial has outgrown the byte
        // cap.  ONE event per connection — the connection closes with it —
        // counted apart from malformed lines.
        const bool too_slow = now - c.last_progress > config_.read_deadline;
        const bool too_big =
            c.buffer.bytes_since_line() > config_.slow_drip_byte_cap;
        if (too_slow || too_big) {
          open = false;
          quarantine_line(c.buffer.partial_sample(),
                          too_big ? "slow drip: byte cap exceeded"
                                  : "slow drip: no line within deadline",
                          /*count_malformed=*/false);
          runtime::MutexLock lock(state_mu_);
          ++feed_.slow_drip;
        }
      }
      if (open) {
        if (kept != i) conns[kept] = std::move(c);
        ++kept;
      } else {
        close_fd(c.fd);
        // order: relaxed — counters only (see accept_ready).
        open_conns_.fetch_sub(1, std::memory_order_relaxed);
        self.load.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    conns.resize(kept);
  }

  // Shutdown: close owned connections and anything handed over but never
  // adopted.
  for (Connection& c : conns) close_fd(c.fd);
  runtime::MutexLock lock(self.mu);
  for (const int fd : self.incoming) close_fd(fd);
  self.incoming.clear();
}

}  // namespace pjsched::service
