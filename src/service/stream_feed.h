// Byte-stream plumbing for the daemon's ingest: an incremental
// newline-splitter with a hard per-line byte bound (the defense against a
// client that never sends '\n'), and small wrappers over POSIX sockets —
// loopback TCP and Unix-domain listeners, client connects, and poll-based
// readiness waits.  Everything here reports failure as a return value;
// nothing throws on bad input from the network.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/service/record.h"

namespace pjsched::service {

/// Incremental line splitter with an oversize quarantine: bytes stream in
/// via feed(), complete lines come out via the sink.  A line longer than
/// `max_line_bytes` is not buffered — its bytes are discarded until the
/// next '\n', and the sink is called once with oversized=true (the stream
/// then resyncs cleanly on the following line).  finish() flushes a final
/// unterminated line, reporting it as a partial.
class LineReader {
 public:
  /// sink(line, oversized): `line` excludes the newline; for oversized
  /// lines only a truncated prefix is delivered (diagnostics, not data).
  using Sink = std::function<void(std::string_view line, bool oversized)>;

  explicit LineReader(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Feeds `n` raw bytes; invokes `sink` once per completed line.
  void feed(const char* data, std::size_t n, const Sink& sink);

  /// Flushes a trailing unterminated line, if any (feed disconnect mid-
  /// line).  Returns true when a partial was flushed; it is delivered to
  /// the sink with oversized == (it had overflowed).
  bool finish(const Sink& sink);

  std::uint64_t oversize_lines() const { return oversize_lines_; }

 private:
  std::size_t max_line_bytes_;  // non-const so LineReader stays movable
  std::string buffer_;
  bool discarding_ = false;  ///< inside an oversize line, pre-resync
  std::uint64_t oversize_lines_ = 0;
};

/// Per-connection flat read buffer for the zero-copy batched ingest path
/// (the successor to LineReader on the daemon's sharded io loops, which
/// stays for callers that want the per-line callback shape).  Usage per
/// readiness event:
///
///   ssize_t n = read(fd, buf.tail(), buf.tail_capacity());
///   if (n > 0) { buf.commit(n); while (buf.parse(entries) made progress) ... }
///
/// parse() scans the buffered bytes with parse_batch (entries reference the
/// buffer in place — valid until the next commit/parse), then compacts the
/// unconsumed partial-line tail to the front, carrying it across reads.  A
/// line that outgrows the whole buffer without a newline is reported ONCE
/// as a kOversize entry, its bytes are dropped, and the buffer enters
/// discard mode until the resync newline — so a peer streaming an unbounded
/// line costs one event and zero buffered memory growth, and the stream
/// recovers cleanly on the next line.
class IngestBuffer {
 public:
  /// Buffer capacity is 4x the line bound: any legal line always fits, and
  /// reads batch several lines per syscall.
  explicit IngestBuffer(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes), buf_(4 * max_line_bytes) {}

  /// Write window for the caller's read(): deposit up to tail_capacity()
  /// bytes at tail(), then commit(n).  tail() compacts the pending partial
  /// to the buffer front first (deferred from parse() so parse entries stay
  /// valid until the caller is done with them); tail_capacity() is positive
  /// after every parse() drain by construction (consumption, compaction, or
  /// discard always frees space).
  char* tail();
  std::size_t tail_capacity() const { return buf_.size() - size_; }
  void commit(std::size_t n);

  /// Scans buffered bytes into `out` (see parse_batch), handling oversize
  /// overflow and discard-mode resync.  Call in a loop until it returns
  /// {0, 0}; entries reference the buffer IN PLACE — valid until the next
  /// tail()/commit(), which may compact under them.
  BatchParse parse(std::span<ParsedRecord> out);

  /// True when bytes of an incomplete line are pending (buffered or being
  /// discarded) — set at disconnect time, the classic mid-line partial.
  bool has_partial() const { return size_ > 0 || discarding_; }
  /// Truncated prefix of the pending partial line (diagnostics).
  std::string_view partial_sample() const {
    return std::string_view(buf_.data() + head_,
                            std::min<std::size_t>(size_, 96));
  }
  /// Bytes received since the last completed line — the slow-dribble
  /// signal: a peer feeding bytes that never finish a line grows this
  /// without bound, and the daemon cuts it off at its byte cap.
  std::uint64_t bytes_since_line() const { return since_line_; }

 private:
  std::size_t max_line_bytes_;
  std::vector<char> buf_;
  std::size_t head_ = 0;      ///< consumed-bytes offset (folded into buf_
                              ///< by the deferred compaction in tail())
  std::size_t size_ = 0;      ///< buffered bytes past head_ (always a line
                              ///< prefix after a parse() drain)
  bool discarding_ = false;   ///< inside an already-reported oversize line
  std::uint64_t since_line_ = 0;
};

/// Creates a listening Unix-domain socket at `path` (unlinking a stale
/// one).  Returns the fd, or -1 with *error set.
int listen_unix(const std::string& path, std::string* error);

/// Creates a loopback (127.0.0.1) TCP listener on `port` (0 = ephemeral).
/// Returns the fd, or -1 with *error set; *bound_port receives the actual
/// port when non-null.
int listen_tcp(std::uint16_t port, std::string* error,
               std::uint16_t* bound_port = nullptr);

/// Accepts one pending connection (the listener must be readable).
/// Returns the fd or -1.
int accept_client(int listen_fd);

int connect_unix(const std::string& path, std::string* error);
int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error);

/// Polls `fd` for readability; true when readable before the timeout.
bool wait_readable(int fd, std::chrono::milliseconds timeout);

/// Writes the whole buffer, retrying short writes; false on error (the
/// caller treats it as a dead connection).  SIGPIPE-safe (MSG_NOSIGNAL on
/// sockets).
bool write_all(int fd, std::string_view data);

void close_fd(int fd);

}  // namespace pjsched::service
