// Byte-stream plumbing for the daemon's ingest: an incremental
// newline-splitter with a hard per-line byte bound (the defense against a
// client that never sends '\n'), and small wrappers over POSIX sockets —
// loopback TCP and Unix-domain listeners, client connects, and poll-based
// readiness waits.  Everything here reports failure as a return value;
// nothing throws on bad input from the network.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/service/record.h"

namespace pjsched::service {

/// Incremental line splitter with an oversize quarantine: bytes stream in
/// via feed(), complete lines come out via the sink.  A line longer than
/// `max_line_bytes` is not buffered — its bytes are discarded until the
/// next '\n', and the sink is called once with oversized=true (the stream
/// then resyncs cleanly on the following line).  finish() flushes a final
/// unterminated line, reporting it as a partial.
class LineReader {
 public:
  /// sink(line, oversized): `line` excludes the newline; for oversized
  /// lines only a truncated prefix is delivered (diagnostics, not data).
  using Sink = std::function<void(std::string_view line, bool oversized)>;

  explicit LineReader(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Feeds `n` raw bytes; invokes `sink` once per completed line.
  void feed(const char* data, std::size_t n, const Sink& sink);

  /// Flushes a trailing unterminated line, if any (feed disconnect mid-
  /// line).  Returns true when a partial was flushed; it is delivered to
  /// the sink with oversized == (it had overflowed).
  bool finish(const Sink& sink);

  std::uint64_t oversize_lines() const { return oversize_lines_; }

 private:
  std::size_t max_line_bytes_;  // non-const so LineReader stays movable
  std::string buffer_;
  bool discarding_ = false;  ///< inside an oversize line, pre-resync
  std::uint64_t oversize_lines_ = 0;
};

/// Creates a listening Unix-domain socket at `path` (unlinking a stale
/// one).  Returns the fd, or -1 with *error set.
int listen_unix(const std::string& path, std::string* error);

/// Creates a loopback (127.0.0.1) TCP listener on `port` (0 = ephemeral).
/// Returns the fd, or -1 with *error set; *bound_port receives the actual
/// port when non-null.
int listen_tcp(std::uint16_t port, std::string* error,
               std::uint16_t* bound_port = nullptr);

/// Accepts one pending connection (the listener must be readable).
/// Returns the fd or -1.
int accept_client(int listen_fd);

int connect_unix(const std::string& path, std::string* error);
int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error);

/// Polls `fd` for readability; true when readable before the timeout.
bool wait_readable(int fd, std::chrono::milliseconds timeout);

/// Writes the whole buffer, retrying short writes; false on error (the
/// caller treats it as a dead connection).  SIGPIPE-safe (MSG_NOSIGNAL on
/// sockets).
bool write_all(int fd, std::string_view data);

void close_fd(int fd);

}  // namespace pjsched::service
