#include "src/service/tenant_router.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace pjsched::service {

TenantRouter::TenantRouter(const RouterConfig& config)
    : config_(config),
      shard_capacity_(std::max<std::size_t>(
          1, config.capacity / std::max<std::size_t>(1, config.shards))),
      ladder_(config.ladder) {
  if (config_.shards == 0 || config_.capacity == 0)
    throw std::invalid_argument("TenantRouter: shards and capacity must be > 0");
  if (!(config_.default_weight > 0.0))
    throw std::invalid_argument("TenantRouter: default_weight must be > 0");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<RouterShard>());
}

std::size_t TenantRouter::shard_of(const std::string& tenant) const {
  return std::hash<std::string>{}(tenant) % shards_.size();
}

TenantRouter::Tenant& TenantRouter::tenant_slot(RouterShard& shard,
                                                const std::string& name) {
  auto it = shard.tenants.find(name);
  if (it == shard.tenants.end())
    it = shard.tenants.emplace(name, Tenant{config_.default_weight, {}, 0.0})
             .first;
  return it->second;
}

void TenantRouter::set_weight(const std::string& tenant, double weight) {
  if (!(weight > 0.0))
    throw std::invalid_argument("TenantRouter::set_weight: weight must be > 0");
  RouterShard& shard = *shards_[shard_of(tenant)];
  runtime::MutexLock lock(shard.mu);
  tenant_slot(shard, tenant).weight = weight;
}

double TenantRouter::fair_share_locked(const RouterShard& shard,
                                       const Tenant& tenant) const {
  double weight_sum = 0.0;
  for (const auto& [name, t] : shard.tenants)
    if (!t.queue.empty() || &t == &tenant) weight_sum += t.weight;
  if (weight_sum <= 0.0) return static_cast<double>(shard_capacity_);
  return static_cast<double>(shard_capacity_) * tenant.weight / weight_sum;
}

TenantRouter::Tenant* TenantRouter::most_over_share_locked(
    RouterShard& shard, const std::string** out_name) {
  Tenant* best = nullptr;
  const std::string* best_name = nullptr;
  double best_overload = 0.0;
  for (auto& [name, t] : shard.tenants) {
    if (t.queue.empty()) continue;
    const double share = fair_share_locked(shard, t);
    if (static_cast<double>(t.queue.size()) <= share) continue;
    const double overload = static_cast<double>(t.queue.size()) / t.weight;
    // Largest queued-per-weight wins; ties go to the tenant whose head
    // record queued earliest (its backlog has been over share the longest).
    const bool wins =
        best == nullptr || overload > best_overload ||
        (overload == best_overload &&
         t.queue.front().seq < best->queue.front().seq);
    if (wins) {
      best = &t;
      best_name = &name;
      best_overload = overload;
    }
  }
  if (out_name != nullptr) *out_name = best_name;
  return best;
}

TenantRouter::Tenant* TenantRouter::most_loaded_locked(
    RouterShard& shard, const std::string** out_name) {
  Tenant* best = nullptr;
  const std::string* best_name = nullptr;
  double best_load = 0.0;
  for (auto& [name, t] : shard.tenants) {
    if (t.queue.empty()) continue;
    const double load = static_cast<double>(t.queue.size()) / t.weight;
    const bool wins = best == nullptr || load > best_load ||
                      (load == best_load &&
                       t.queue.front().seq < best->queue.front().seq);
    if (wins) {
      best = &t;
      best_name = &name;
      best_load = load;
    }
  }
  if (out_name != nullptr) *out_name = best_name;
  return best;
}

PushOutcome TenantRouter::admit_locked(RouterShard& shard,
                                       QueuedRecord& queued, Rung rung,
                                       const std::string* offender,
                                       std::vector<ShedRecord>* evictions,
                                       ShedReason* reason) {
  if (rung == Rung::kDrain) {
    ++shard.rejected_drain;
    *reason = ShedReason::kRejectDrain;
    return PushOutcome::kShed;
  }
  if (rung == Rung::kRejectTenant && offender != nullptr &&
      queued.record.tenant == *offender) {
    ++shard.rejected_tenant;
    *reason = ShedReason::kRejectTenant;
    return PushOutcome::kShed;
  }

  Tenant& tenant = tenant_slot(shard, queued.record.tenant);

  if (rung >= Rung::kShedNew) {
    // Degraded: arrivals that would put the tenant over its fair share are
    // shed at the door; under-share tenants are still served normally.
    const double share = fair_share_locked(shard, tenant);
    if (static_cast<double>(tenant.queue.size()) + 1.0 > share) {
      ++shard.shed_new;
      *reason = ShedReason::kShedNew;
      return PushOutcome::kShed;
    }
  }

  if (shard.depth >= shard_capacity_) {
    // Full shard: weighted fair shedding.  The most-loaded tenant (largest
    // queued/weight) yields its EARLIEST-queued record — but only when it
    // is more loaded than the arrival's tenant would become by queuing;
    // otherwise the arrival is the fair victim and is shed itself.  (A
    // tenant can never evict itself: its post-queue load strictly exceeds
    // its current load.)
    const double incoming_load =
        (static_cast<double>(tenant.queue.size()) + 1.0) / tenant.weight;
    const std::string* victim_name = nullptr;
    Tenant* victim = most_loaded_locked(shard, &victim_name);
    if (victim == nullptr ||
        static_cast<double>(victim->queue.size()) / victim->weight <
            incoming_load) {
      ++shard.shed_arrival_full;
      *reason = ShedReason::kFairShare;
      return PushOutcome::kShed;
    }
    evictions->push_back(
        ShedRecord{std::move(victim->queue.front()), ShedReason::kFairShare});
    victim->queue.pop_front();
    --shard.depth;
    ++shard.shed_fair_share;
  }

  if (tenant.queue.empty())
    // Activation catch-up: an idle tenant re-enters at the shard's virtual
    // clock, so idling never banks service credit.
    tenant.virtual_time = std::max(tenant.virtual_time, shard.vclock);
  tenant.queue.push_back(std::move(queued));
  ++shard.depth;
  shard.peak_depth = std::max(shard.peak_depth, shard.depth);
  ++shard.accepted;
  return PushOutcome::kAdmitted;
}

PushOutcome TenantRouter::push(JobRecord record,
                               std::vector<ShedRecord>* evictions,
                               ShedReason* reason) {
  QueuedRecord queued;
  queued.record = std::move(record);
  queued.ingest = Clock::now();
  // order: relaxed — a pure ticket; the sequence only needs uniqueness and
  // rough arrival order for tie-breaks, no payload is published through it.
  queued.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

  const Rung rung =
      static_cast<Rung>(rung_mirror_.load(std::memory_order_acquire));
  // Lock order is always ladder_mu_ -> shard.mu (tick() holds the ladder
  // lock while walking shards), so the offender snapshot happens before
  // the shard lock below.
  std::string offender_copy;
  const std::string* offender = nullptr;
  if (rung == Rung::kRejectTenant) {
    runtime::MutexLock lock(ladder_mu_);
    if (!offender_.empty()) {
      offender_copy = offender_;
      offender = &offender_copy;
    }
  }

  RouterShard& shard = *shards_[shard_of(queued.record.tenant)];
  runtime::MutexLock lock(shard.mu);
  return admit_locked(shard, queued, rung, offender, evictions, reason);
}

void TenantRouter::admit_batch(std::span<JobRecord> records,
                               std::vector<BatchOutcome>* outcomes,
                               std::vector<ShedRecord>* evictions,
                               BatchScratch* scratch) {
  const std::size_t n = records.size();
  outcomes->clear();
  outcomes->resize(n);
  if (n == 0) return;

  // One ticket block for the whole batch: record i gets first_seq + i, the
  // exact sequence a push() loop would hand out.
  // order: relaxed — same pure-ticket semantics as push().
  const std::uint64_t first_seq =
      next_seq_.fetch_add(n, std::memory_order_relaxed);
  const Clock::time_point ingest = Clock::now();
  // order: acquire — pairs with the release stores in tick()/begin_drain(),
  // exactly as push()'s rung read.
  const Rung rung =
      static_cast<Rung>(rung_mirror_.load(std::memory_order_acquire));
  // Offender snapshot BEFORE any shard lock (lock order ladder_mu_ ->
  // shard.mu), once per batch.
  const std::string* offender = nullptr;
  if (rung == Rung::kRejectTenant) {
    runtime::MutexLock lock(ladder_mu_);
    scratch->offender = offender_;
    if (!scratch->offender.empty()) offender = &scratch->offender;
  }

  // Stable counting sort of record indices by shard: per-shard order is
  // batch order, and records of different shards never interact, so the
  // per-shard admit_locked replay below is observationally identical to a
  // sequential push() loop.
  const std::size_t m = shards_.size();
  scratch->shard_index.resize(n);
  scratch->bucket.assign(m + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::uint32_t>(shard_of(records[i].tenant));
    scratch->shard_index[i] = s;
    ++scratch->bucket[s + 1];
  }
  for (std::size_t s = 0; s < m; ++s) scratch->bucket[s + 1] += scratch->bucket[s];
  scratch->cursor.assign(scratch->bucket.begin(), scratch->bucket.end());
  scratch->order.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    scratch->order[scratch->cursor[scratch->shard_index[i]]++] =
        static_cast<std::uint32_t>(i);

  QueuedRecord queued;
  for (std::size_t s = 0; s < m; ++s) {
    const std::uint32_t begin = scratch->bucket[s];
    const std::uint32_t end = scratch->bucket[s + 1];
    if (begin == end) continue;
    RouterShard& shard = *shards_[s];
    runtime::MutexLock lock(shard.mu);  // ONE lock hold per shard per batch
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t i = scratch->order[k];
      queued.record = std::move(records[i]);
      queued.ingest = ingest;
      queued.seq = first_seq + i;
      BatchOutcome& out = (*outcomes)[i];
      out.outcome =
          admit_locked(shard, queued, rung, offender, evictions, &out.reason);
      if (out.outcome == PushOutcome::kShed)
        // Hand the record back so the caller can account the shed by
        // tenant (admit_locked moves from `queued` only on admission).
        records[i] = std::move(queued.record);
    }
  }
}

bool TenantRouter::try_pop(QueuedRecord* out) {
  // order: relaxed — the cursor only rotates the scan start; any value is
  // correct, fairness needs rotation, not ordering.
  const std::uint64_t start = pop_cursor_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = shards_.size();
  for (std::size_t i = 0; i < n; ++i) {
    RouterShard& shard = *shards_[(start + i) % n];
    runtime::MutexLock lock(shard.mu);
    if (shard.depth == 0) continue;
    Tenant* best = nullptr;
    for (auto& [name, t] : shard.tenants) {
      if (t.queue.empty()) continue;
      const bool wins = best == nullptr || t.virtual_time < best->virtual_time ||
                        (t.virtual_time == best->virtual_time &&
                         t.queue.front().seq < best->queue.front().seq);
      if (wins) best = &t;
    }
    if (best == nullptr) continue;  // depth said otherwise; defensive
    *out = std::move(best->queue.front());
    best->queue.pop_front();
    --shard.depth;
    ++shard.popped;
    shard.vclock = best->virtual_time;
    best->virtual_time += out->record.work / best->weight;
    return true;
  }
  return false;
}

void TenantRouter::trim_shard_locked(RouterShard& shard,
                                     std::vector<ShedRecord>* evictions) {
  for (auto& [name, t] : shard.tenants) {
    if (t.queue.empty()) continue;
    const double share = fair_share_locked(shard, t);
    // Keep at least one record per tenant: trimming a well-behaved tenant
    // to zero would deny it progress entirely, which is exactly what the
    // ladder exists to prevent.
    const auto allowed = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(share + 1e-9)));
    while (t.queue.size() > allowed) {
      evictions->push_back(
          ShedRecord{std::move(t.queue.front()), ShedReason::kShedQueued});
      t.queue.pop_front();
      --shard.depth;
      ++shard.shed_queued;
    }
  }
}

Rung TenantRouter::tick(bool stalled, std::vector<ShedRecord>* evictions) {
  const double utilization =
      static_cast<double>(depth()) / static_cast<double>(config_.capacity);
  runtime::MutexLock lock(ladder_mu_);
  const Rung rung = ladder_.on_sample(utilization, stalled);
  // order: release pairs with push()'s acquire load — a pusher that sees
  // the new rung must also see the ladder state that produced it.
  rung_mirror_.store(static_cast<std::uint8_t>(rung),
                     std::memory_order_release);

  if (rung >= Rung::kShedQueued && rung != Rung::kDrain) {
    for (auto& shard : shards_) {
      runtime::MutexLock shard_lock(shard->mu);
      trim_shard_locked(*shard, evictions);
    }
  }

  if (rung == Rung::kRejectTenant) {
    if (offender_.empty()) {
      // Elect the globally worst tenant: the most-over-share one if any
      // (largest queued/weight above share), otherwise the most-loaded —
      // the shed-queued trim usually ran just before this rung, so queues
      // may already sit exactly at share.  Earliest-queued heads break
      // ties.
      double best_load = 0.0;
      std::uint64_t best_seq = 0;
      bool best_over_share = false;
      for (auto& shard : shards_) {
        runtime::MutexLock shard_lock(shard->mu);
        const std::string* name = nullptr;
        Tenant* over = most_over_share_locked(*shard, &name);
        const bool is_over = over != nullptr;
        Tenant* t = is_over ? over : most_loaded_locked(*shard, &name);
        if (t == nullptr) continue;
        const double load = static_cast<double>(t->queue.size()) / t->weight;
        const std::uint64_t seq = t->queue.front().seq;
        // An over-share candidate always beats a merely-loaded one.
        const bool wins =
            offender_.empty() || (is_over && !best_over_share) ||
            (is_over == best_over_share &&
             (load > best_load || (load == best_load && seq < best_seq)));
        if (wins) {
          offender_ = *name;
          best_load = load;
          best_seq = seq;
          best_over_share = is_over;
        }
      }
    }
  } else {
    offender_.clear();
  }
  return rung;
}

void TenantRouter::begin_drain() {
  runtime::MutexLock lock(ladder_mu_);
  ladder_.begin_drain();
  // order: release — same pairing as tick()'s mirror store.
  rung_mirror_.store(static_cast<std::uint8_t>(Rung::kDrain),
                     std::memory_order_release);
  offender_.clear();
}

Rung TenantRouter::rung() const {
  // order: acquire — pairs with the release stores in tick()/begin_drain().
  return static_cast<Rung>(rung_mirror_.load(std::memory_order_acquire));
}

std::string TenantRouter::offender() const {
  runtime::MutexLock lock(ladder_mu_);
  return offender_;
}

std::size_t TenantRouter::depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    runtime::MutexLock lock(shard->mu);
    total += shard->depth;
  }
  return total;
}

TenantRouter::Stats TenantRouter::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    runtime::MutexLock lock(shard->mu);
    total.accepted += shard->accepted;
    total.popped += shard->popped;
    total.shed_fair_share += shard->shed_fair_share;
    total.shed_arrival_full += shard->shed_arrival_full;
    total.shed_new += shard->shed_new;
    total.shed_queued += shard->shed_queued;
    total.rejected_tenant += shard->rejected_tenant;
    total.rejected_drain += shard->rejected_drain;
    total.depth += shard->depth;
    total.peak_depth = std::max(total.peak_depth, shard->peak_depth);
  }
  return total;
}

}  // namespace pjsched::service
