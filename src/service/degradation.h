// The overload degradation ladder: the daemon's explicit answer to "what
// do we give up, in what order, when the arrival process misbehaves".
//
//   normal        -> everything admitted (fair shedding only when a shard
//                    is literally full)
//   shed-new      -> new arrivals from tenants over their fair share are
//                    shed at ingest
//   shed-queued   -> additionally, queued backlog of over-share tenants is
//                    trimmed back to fair share every maintenance tick
//   reject-tenant -> the most-over-share tenant is rejected outright until
//                    the ladder de-escalates
//   drain         -> terminal: nothing new is accepted, queues drain out
//
// The ladder is driven by two signals: queue utilization (aggregate queued
// records / capacity) and the pool watchdog's stall flag.  Escalation and
// de-escalation are hysteretic — each rung has an enter threshold and a
// strictly lower exit threshold, and both directions require the signal to
// hold for a configurable number of consecutive samples — so a square-wave
// load whose period is shorter than the hold, or whose low phase sits
// inside the hysteresis band, cannot make the ladder oscillate.
//
// Deterministic and externally synchronized: on_sample is a pure function
// of (config, sample history); the TenantRouter calls it under its own
// lock.  No wall-clock, no randomness — campaigns replay bit-for-bit.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace pjsched::service {

enum class Rung : std::uint8_t {
  kNormal = 0,
  kShedNew = 1,
  kShedQueued = 2,
  kRejectTenant = 3,
  kDrain = 4,
};

inline const char* to_string(Rung r) {
  switch (r) {
    case Rung::kNormal: return "normal";
    case Rung::kShedNew: return "shed-new";
    case Rung::kShedQueued: return "shed-queued";
    case Rung::kRejectTenant: return "reject-tenant";
    case Rung::kDrain: return "drain";
  }
  return "?";
}

struct LadderConfig {
  // Enter/exit utilization thresholds per rung; exit must be strictly
  // below enter (the hysteresis band).
  double shed_new_enter = 0.70;
  double shed_new_exit = 0.45;
  double shed_queued_enter = 0.85;
  double shed_queued_exit = 0.60;
  double reject_enter = 0.95;
  double reject_exit = 0.70;
  /// Consecutive samples at/above an enter threshold before escalating.
  unsigned up_hold = 2;
  /// Consecutive samples below the current rung's exit threshold before
  /// stepping down one rung (recovery is deliberately slower than attack).
  unsigned down_hold = 8;

  /// Throws std::invalid_argument when the bands are inconsistent.
  void validate() const {
    const bool ordered =
        shed_new_exit < shed_new_enter && shed_queued_exit < shed_queued_enter &&
        reject_exit < reject_enter && shed_new_enter < shed_queued_enter &&
        shed_queued_enter < reject_enter && shed_new_exit <= shed_queued_exit &&
        shed_queued_exit <= reject_exit;
    if (!ordered || up_hold == 0 || down_hold == 0)
      throw std::invalid_argument(
          "LadderConfig: thresholds must satisfy exit < enter per rung, be "
          "monotone across rungs, and holds must be >= 1");
  }
};

class DegradationLadder {
 public:
  explicit DegradationLadder(const LadderConfig& config) : config_(config) {
    config_.validate();
  }

  /// One evaluation.  `utilization` is the queue-depth signal in [0, 1]
  /// (values above 1 are clamped); `stalled` is the watchdog signal — a
  /// stalled sample escalates one rung immediately (a wedged pool is
  /// overload the depth signal cannot see), still subject to the normal
  /// hysteretic recovery on the way down.  Returns the rung after the
  /// sample.
  Rung on_sample(double utilization, bool stalled);

  /// Enters the terminal drain rung (shutdown); on_sample then always
  /// returns kDrain.
  void begin_drain() {
    if (rung_ != Rung::kDrain) ++transitions_;
    rung_ = Rung::kDrain;
  }

  Rung rung() const { return rung_; }
  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t samples() const { return samples_; }
  std::uint64_t stall_escalations() const { return stall_escalations_; }

 private:
  /// Highest rung whose enter threshold the utilization reaches.
  Rung target_up(double u) const;
  /// Highest rung whose *exit* threshold the utilization still sustains.
  Rung target_down(double u) const;

  LadderConfig config_;
  Rung rung_ = Rung::kNormal;
  unsigned up_streak_ = 0;
  unsigned down_streak_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t stall_escalations_ = 0;
};

}  // namespace pjsched::service
