#include "src/service/stream_feed.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pjsched::service {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void LineReader::feed(const char* data, std::size_t n, const Sink& sink) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (discarding_) {
        // End of an oversize line: report once (truncated prefix only) and
        // resync — the next byte starts a fresh, trusted line.
        ++oversize_lines_;
        sink(buffer_, /*oversized=*/true);
        discarding_ = false;
      } else {
        sink(buffer_, /*oversized=*/false);
      }
      buffer_.clear();
      continue;
    }
    if (discarding_) continue;  // drop bytes until the resync newline
    if (buffer_.size() >= max_line_bytes_) {
      discarding_ = true;  // the bound is the defense: stop buffering now
      continue;
    }
    buffer_.push_back(c);
  }
}

bool LineReader::finish(const Sink& sink) {
  if (buffer_.empty() && !discarding_) return false;
  if (discarding_) ++oversize_lines_;
  sink(buffer_, /*oversized=*/discarding_);
  buffer_.clear();
  discarding_ = false;
  return true;
}

char* IngestBuffer::tail() {
  // Deferred compaction: parse() only advances head_, so the entries it
  // returned keep referencing stable bytes; the memmove happens here, when
  // the caller is about to overwrite the buffer anyway.
  if (head_ > 0) {
    std::memmove(buf_.data(), buf_.data() + head_, size_);
    head_ = 0;
  }
  return buf_.data() + size_;
}

void IngestBuffer::commit(std::size_t n) {
  size_ += n;
  since_line_ += n;
}

BatchParse IngestBuffer::parse(std::span<ParsedRecord> out) {
  BatchParse result;
  if (discarding_) {
    // Inside an oversize line that was already reported: drop bytes until
    // the resync newline, silently.
    const void* nl = std::memchr(buf_.data() + head_, '\n', size_);
    if (nl == nullptr) {
      head_ = 0;
      size_ = 0;
      return result;
    }
    const std::size_t skip = static_cast<std::size_t>(
                                 static_cast<const char*>(nl) -
                                 (buf_.data() + head_)) +
                             1;
    head_ += skip;
    size_ -= skip;
    result.consumed += skip;
    discarding_ = false;
    since_line_ = size_;
  }
  const BatchParse scanned =
      parse_batch(std::string_view(buf_.data() + head_, size_), out);
  result.produced = scanned.produced;
  result.consumed += scanned.consumed;
  if (scanned.consumed > 0) {
    // A completed line (even an oversize resync) is progress, so the
    // slow-dribble counter resets to just the pending partial.
    head_ += scanned.consumed;
    size_ -= scanned.consumed;
    since_line_ = size_;
  }
  if (head_ == 0 && size_ == buf_.size() && result.produced < out.size()) {
    // The whole buffer is one line with no newline in sight: report it
    // once (truncated prefix only), drop the bytes, and discard until the
    // resync newline.
    ParsedRecord& entry = out[result.produced];
    entry.status = ParseStatus::kOversize;
    entry.line =
        std::string_view(buf_.data(), std::min(size_, max_line_bytes_));
    entry.error = "line overflowed the read buffer without a newline";
    ++result.produced;
    size_ = 0;
    discarding_ = true;
  }
  return result;
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path empty or too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket(AF_UNIX)");
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = errno_string("bind(unix)");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_string("listen(unix)");
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::string* error,
               std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket(AF_INET)");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the feed is unauthenticated, so it is never exposed
  // beyond the host.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = errno_string("bind(tcp)");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_string("listen(tcp)");
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0)
      *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int accept_client(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path empty or too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket(AF_UNIX)");
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = errno_string("connect(unix)");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket(AF_INET)");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = errno_string("connect(tcp)");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace pjsched::service
