// Jobs and tasks for the threaded work-stealing runtime.
//
// A Job mirrors the paper's unit of service: it arrives (submit time), its
// DAG unfolds as tasks spawn subtasks, and it completes when every task has
// finished.  Completion is tracked with a pending-task counter: the root
// task counts 1, every spawn increments, every task-exit decrements; zero
// means done.  Flow time = completion - submission.
//
// Fault model: a job ends in exactly one terminal outcome.  `Completed` is
// the fault-free path; `Failed` (a task body threw), `DeadlineExpired`
// (the per-job deadline passed before the job finished), and `Shed` (the
// bounded admission queue dropped the job under overload) are the degraded
// paths.  Cancellation is cooperative and monotone: the first cause wins
// (try_cancel is a single CAS), every not-yet-started task of a cancelled
// job is skipped instead of executed, and a skipped task still drains the
// pending counter *and* signals its WaitGroup, so joins and waiters always
// wake.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/runtime/annotations.h"
#include "src/runtime/inline_fn.h"
#include "src/runtime/mutex.h"

namespace pjsched::runtime {

class TaskContext;

/// The task body.  A small-buffer move-only callable (inline_fn.h): bodies
/// capturing at most InlineFn's inline capacity — everything the runtime's
/// own algorithms spawn — ride in the Task slab slot with zero allocator
/// traffic; larger bodies fall back to one heap allocation, as with
/// std::function.
using TaskFn = InlineFn<void(TaskContext&)>;
using Clock = std::chrono::steady_clock;

/// Terminal state of a job.  `kRunning` is the only non-terminal value.
enum class JobOutcome : std::uint8_t {
  kRunning,
  kCompleted,        ///< every task finished without fault
  kFailed,           ///< a task body threw; remaining tasks were cancelled
  kDeadlineExpired,  ///< the per-job deadline passed; remaining tasks cancelled
  kShed,             ///< a queued job dropped by shed-oldest (or a shutdown
                     ///< drain); never executed
  kRejected,         ///< the submission itself was refused (reject-newest on
                     ///< a full queue, or the queue closed mid-submit)
};

inline const char* to_string(JobOutcome o) {
  switch (o) {
    case JobOutcome::kRunning: return "running";
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kDeadlineExpired: return "deadline-expired";
    case JobOutcome::kShed: return "shed";
    case JobOutcome::kRejected: return "rejected";
  }
  return "?";
}

/// Thrown out of TaskContext::wait_help when the surrounding job was
/// cancelled during the join: the remaining subtasks were skipped, so
/// continuing the body is pointless and it must unwind.  Thrown only once
/// the WaitGroup has fully drained — every subtask, skipped or executed,
/// still signals its WaitGroup — so no in-flight sibling can touch the
/// waiter's stack after the unwind.  The pool catches it at the task
/// boundary.
class JobCancelledError : public std::runtime_error {
 public:
  JobCancelledError() : std::runtime_error("job cancelled") {}
};

class Job {
 public:
  Job(std::uint64_t id, double weight) : id_(id), weight_(weight) {}

  std::uint64_t id() const { return id_; }
  double weight() const { return weight_; }

  Clock::time_point submit_time() const { return submit_time_; }
  Clock::time_point completion_time() const { return completion_time_; }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Terminal outcome; kRunning until the job reaches one.
  JobOutcome outcome() const {
    return outcome_.load(std::memory_order_acquire);
  }

  /// True once the job has a degraded outcome (Failed / DeadlineExpired /
  /// Shed / Rejected): remaining tasks will be skipped.  Long-running task
  /// bodies should poll TaskContext::cancelled() to stop early.
  bool cancelled() const {
    const JobOutcome o = outcome();
    return o != JobOutcome::kRunning && o != JobOutcome::kCompleted;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// What went wrong (first failure wins); empty for fault-free jobs.
  std::string error() const {
    MutexLock lock(mu_);
    return error_;
  }

  /// Blocks until the job reaches a terminal outcome (any of them: a
  /// cancelled job still "finishes" once its queued tasks have drained).
  void wait() const {
    MutexLock lock(mu_);
    while (!finished_.load(std::memory_order_acquire)) cv_.wait(mu_);
  }

  /// Flow time in seconds (valid after completion).
  double flow_seconds() const {
    return std::chrono::duration<double>(completion_time_ - submit_time_)
        .count();
  }

 private:
  friend class ThreadPool;
  friend class TaskContext;

  void mark_submitted() { submit_time_ = Clock::now(); }

  void set_deadline(Clock::time_point d) {
    deadline_ = d;
    has_deadline_ = true;
  }

  bool deadline_passed(Clock::time_point now) const {
    return has_deadline_ && now > deadline_;
  }

  /// Moves the job to a degraded terminal outcome; the first cause wins.
  /// Returns true iff this call performed the transition.
  bool try_cancel(JobOutcome reason) {
    JobOutcome expected = JobOutcome::kRunning;
    // order: acq_rel on success publishes everything the canceller did
    // before the transition to readers of outcome(); acquire on failure so
    // the loser observes the winner's outcome coherently.
    return outcome_.compare_exchange_strong(expected, reason,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
  }

  void set_error(std::string message) {
    MutexLock lock(mu_);
    if (error_.empty()) error_ = std::move(message);
  }

  void add_pending(std::uint64_t n = 1) {
    // order: relaxed — a task is only popped/stolen *after* the deque (or
    // admission queue) publication, which carries the increment; the
    // matching fetch_sub in finish_one is acq_rel and pairs the count.
    pending_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t pending() const {
    // order: relaxed — diagnostic read (dump_state); a stale value only
    // makes the dump slightly stale, never wrong decisions.
    return pending_.load(std::memory_order_relaxed);
  }

  /// Returns true if this decrement completed the job.
  bool finish_one() {
    // order: acq_rel — release publishes this task's effects to whoever
    // performs the final decrement; acquire makes the final decrement
    // observe every earlier task's effects before declaring completion.
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      completion_time_ = Clock::now();
      // Fault-free drain => Completed; a cancelled job keeps its reason.
      JobOutcome expected = JobOutcome::kRunning;
      // order: acq_rel on success pairs with outcome() acquire loads;
      // acquire on failure — a cancelled job keeps its reason, and we must
      // see the canceller's writes before recording the job.
      outcome_.compare_exchange_strong(expected, JobOutcome::kCompleted,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
      {
        // The locked store pairs with wait()'s locked predicate loop: the
        // notify below cannot slip between a waiter's predicate check and
        // its block, so wakeups are never missed.
        MutexLock lock(mu_);
        finished_.store(true, std::memory_order_release);
      }
      cv_.notify_all();
      return true;
    }
    return false;
  }

  const std::uint64_t id_;
  const double weight_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> finished_{false};
  std::atomic<JobOutcome> outcome_{JobOutcome::kRunning};
  Clock::time_point submit_time_{};
  Clock::time_point completion_time_{};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;  // written before the job is visible to workers
  mutable Mutex mu_;
  mutable CondVar cv_;
  std::string error_ PJSCHED_GUARDED_BY(mu_);  // first failure wins
};

using JobHandle = std::shared_ptr<Job>;

class WaitGroup;

/// A schedulable unit: one task of one job.  Owned by whoever holds the
/// pointer (deques and the admission queue hold raw pointers); lives in a
/// TaskPool slab slot — the executing worker *releases* it after running
/// (TaskPool::release recycles the slot), it is never `delete`d directly.
struct Task {
  Job* job = nullptr;
  TaskFn fn;
  /// The join this task reports to, or nullptr.  Kept outside the body on
  /// purpose: the pool signals it on *every* path out of execute() — body
  /// ran, body threw, or the task was skipped because its job was
  /// cancelled — so a WaitGroup always drains and a waiter never unwinds
  /// (destroying the stack-allocated WaitGroup) while a sibling still
  /// holds a pointer to it.
  WaitGroup* wg = nullptr;
};

/// Counts outstanding spawned subtasks for a fork-join "sync": the spawner
/// waits (while helping execute other tasks) until the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(std::uint64_t count = 0) : count_(count) {}
  // order: relaxed — add() runs in the spawner before the subtask is
  // published via the deque; the deque's release edge carries it.
  void add(std::uint64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }
  // order: acq_rel release-publishes the subtask's effects to the joiner,
  // whose idle() acquire-load pairs with it.
  void done() { count_.fetch_sub(1, std::memory_order_acq_rel); }
  bool idle() const { return count_.load(std::memory_order_acquire) == 0; }

 private:
  std::atomic<std::uint64_t> count_;
};

}  // namespace pjsched::runtime
