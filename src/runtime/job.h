// Jobs and tasks for the threaded work-stealing runtime.
//
// A Job mirrors the paper's unit of service: it arrives (submit time), its
// DAG unfolds as tasks spawn subtasks, and it completes when every task has
// finished.  Completion is tracked with a pending-task counter: the root
// task counts 1, every spawn increments, every task-exit decrements; zero
// means done.  Flow time = completion - submission.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

namespace pjsched::runtime {

class TaskContext;

using TaskFn = std::function<void(TaskContext&)>;
using Clock = std::chrono::steady_clock;

class Job {
 public:
  Job(std::uint64_t id, double weight) : id_(id), weight_(weight) {}

  std::uint64_t id() const { return id_; }
  double weight() const { return weight_; }

  Clock::time_point submit_time() const { return submit_time_; }
  Clock::time_point completion_time() const { return completion_time_; }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Blocks until the job completes.
  void wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return finished_.load(std::memory_order_acquire); });
  }

  /// Flow time in seconds (valid after completion).
  double flow_seconds() const {
    return std::chrono::duration<double>(completion_time_ - submit_time_)
        .count();
  }

 private:
  friend class ThreadPool;
  friend class TaskContext;

  void mark_submitted() { submit_time_ = Clock::now(); }

  void add_pending(std::uint64_t n = 1) {
    pending_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Returns true if this decrement completed the job.
  bool finish_one() {
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      completion_time_ = Clock::now();
      {
        std::lock_guard<std::mutex> lock(mu_);
        finished_.store(true, std::memory_order_release);
      }
      cv_.notify_all();
      return true;
    }
    return false;
  }

  const std::uint64_t id_;
  const double weight_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> finished_{false};
  Clock::time_point submit_time_{};
  Clock::time_point completion_time_{};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
};

using JobHandle = std::shared_ptr<Job>;

/// A schedulable unit: one task of one job.  Owned by whoever holds the
/// pointer (deques and the admission queue hold raw pointers; the executing
/// worker deletes after running).
struct Task {
  Job* job = nullptr;
  TaskFn fn;
};

/// Counts outstanding spawned subtasks for a fork-join "sync": the spawner
/// waits (while helping execute other tasks) until the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(std::uint64_t count = 0) : count_(count) {}
  void add(std::uint64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }
  void done() { count_.fetch_sub(1, std::memory_order_acq_rel); }
  bool idle() const { return count_.load(std::memory_order_acquire) == 0; }

 private:
  std::atomic<std::uint64_t> count_;
};

}  // namespace pjsched::runtime
