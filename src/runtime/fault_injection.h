// Deterministic fault injection for the threaded runtime.
//
// A FaultPlan describes, from a single seed, which faults the ThreadPool
// should experience: task bodies that throw, workers that stall before
// every task (degraded machines), and a fixed delay on every admission
// from the global queue.  The point is to make the overload / degraded
// regimes — exactly where the paper's max-flow-time guarantees are
// stressed — reproducible enough to test and benchmark against.
//
// Determinism contract: the decision for the i-th fault query of each kind
// is a pure function of (plan, i).  Which *task* receives the i-th query
// still depends on thread interleaving (that is inherent to a real
// runtime), but the decision sequence itself — and therefore the total
// number of injected faults — is bit-for-bit reproducible, and explicit
// `fail_task_indices` pin individual executions for tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace pjsched::runtime {

/// Thrown by the pool inside a task body when the plan injects a failure;
/// derives from std::runtime_error so it flows through the same
/// exception-containment path as user faults.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(std::uint64_t task_index)
      : std::runtime_error("injected fault at task execution #" +
                           std::to_string(task_index)),
        task_index_(task_index) {}

  std::uint64_t task_index() const { return task_index_; }

 private:
  std::uint64_t task_index_;
};

/// Declarative description of the faults to inject.  Default-constructed =
/// no faults.
struct FaultPlan {
  /// Seeds the Bernoulli failure sequence (see task_failure_probability).
  std::uint64_t seed = 1;

  /// Each task execution fails with this probability, decided by a seeded
  /// counter-based hash (deterministic sequence; see header comment).
  double task_failure_probability = 0.0;

  /// Explicit global task-execution indices (0-based, in order of
  /// execution across the whole pool) that must fail — the deterministic
  /// knob for tests ("the first task ever executed throws").
  std::vector<std::uint64_t> fail_task_indices;

  /// A degraded worker sleeps `stall` before executing each task —
  /// modelling a slow machine; a large stall approximates a hung worker.
  struct WorkerStall {
    unsigned worker = 0;
    std::chrono::microseconds stall{0};
  };
  std::vector<WorkerStall> worker_stalls;

  /// Sleep applied by a worker right before executing a task it admitted
  /// from the global queue (models slow admission under contention).
  std::chrono::microseconds admission_delay{0};

  /// True when the plan injects nothing (the pool then skips the
  /// per-task bookkeeping entirely).
  bool empty() const {
    return task_failure_probability <= 0.0 && fail_task_indices.empty() &&
           worker_stalls.empty() && admission_delay.count() == 0;
  }
};

/// Runtime engine for a FaultPlan: hands out decisions to the pool.
/// Thread-safe; one instance per ThreadPool.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, unsigned workers);

  /// Claims the next global task-execution index; returns that index when
  /// the execution must fail (counted in faults_injected()), nullopt
  /// otherwise.
  std::optional<std::uint64_t> next_task_fault();

  /// Stall to apply before the given worker executes any task (zero for
  /// healthy workers).
  std::chrono::microseconds worker_stall(unsigned worker) const {
    return worker < stalls_.size() ? stalls_[worker]
                                   : std::chrono::microseconds{0};
  }

  std::chrono::microseconds admission_delay() const {
    return plan_.admission_delay;
  }

  /// Number of task executions failed so far.
  std::uint64_t faults_injected() const {
    // order: relaxed — diagnostic tally read by stats(); no ordering needed.
    return faults_.load(std::memory_order_relaxed);
  }

  /// Number of task executions queried so far.
  std::uint64_t tasks_seen() const {
    // order: relaxed — diagnostic read; the ticket fetch_add in
    // next_task_fault() needs only atomicity, not ordering.
    return next_index_.load(std::memory_order_relaxed);
  }

  /// Pure decision function: would task-execution index i fail under this
  /// plan?  (Exposed for tests of the determinism contract.)
  bool would_fail(std::uint64_t task_index) const;

 private:
  FaultPlan plan_;
  std::vector<std::chrono::microseconds> stalls_;  // indexed by worker
  std::atomic<std::uint64_t> next_index_{0};
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace pjsched::runtime
