// Per-worker slab/freelist recycling for Task objects — the allocator half
// of the runtime hot path (the callable half is inline_fn.h).
//
// Before this, every `TaskContext::spawn` and `ThreadPool::submit` did a
// `new Task` and the executing worker a `delete`: one allocator round-trip
// per task, serialized on the allocator's internal locks once several
// workers churn.  A Cilk-style runtime amortizes that away; so do we:
//
//   * each worker owns a TaskPool: allocation pops a plain (unsynchronized)
//     freelist; exhaustion first drains the reclaim list, then carves a new
//     block of kBlockSize slots in one heap allocation;
//   * a task is usually freed by the worker that allocated it (local pop or
//     a steal executed to completion) — that free is a plain freelist push;
//   * a task freed on a *different* thread (stolen task, shutdown drain,
//     rejected submission) is pushed onto the owning pool's `reclaim_`
//     Treiber stack with one CAS; the owner drains it wholesale (a single
//     exchange) the next time its freelist runs dry.  The drain is the only
//     pop, so the stack has no ABA window.
//
// Thread contract: `allocate` is owner-only (the ThreadPool's external
// submission pool serializes its callers with a mutex); `release` is safe
// from any thread.  Slots are recycled, never returned to the heap until
// the pool dies — the same bounded-by-high-water-mark reclamation the
// Chase–Lev deque uses for its buffers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/runtime/interference.h"
#include "src/runtime/job.h"

namespace pjsched::runtime {

class TaskPool {
 public:
  /// Slots carved per block: one block serves a whole fork-join fan-out,
  /// and steady-state spawn/execute churn allocates no blocks at all.
  static constexpr std::size_t kBlockSize = 128;

  TaskPool() = default;
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Owner thread only: constructs a Task in a recycled (or fresh) slot.
  Task* allocate(Job* job, TaskFn fn, WaitGroup* wg) {
    if (free_list_ == nullptr) {
      // order: acquire pairs with push_remote's release CAS — the remote
      // releaser's destruction of the slot contents happens-before reuse.
      free_list_ = reclaim_.exchange(nullptr, std::memory_order_acquire);
      if (free_list_ == nullptr) carve_block();
    }
    Slot* slot = free_list_;
    free_list_ = slot->next;
    return ::new (static_cast<void*>(slot->storage))
        Task{job, std::move(fn), wg};
  }

  /// Any thread: destroys the task and returns its slot to the owning
  /// pool.  `local` is the caller's own pool (nullptr for non-worker
  /// threads): a matching owner takes the unsynchronized freelist path,
  /// anything else CAS-pushes onto the owner's reclaim stack.
  static void release(Task* task, TaskPool* local) {
    Slot* slot = slot_of(task);
    task->~Task();
    TaskPool* owner = slot->owner;
    if (owner == local) {
      slot->next = owner->free_list_;
      owner->free_list_ = slot;
    } else {
      owner->push_remote(slot);
    }
  }

  /// Blocks carved so far (relaxed; for tests and diagnostics).  Recycling
  /// works iff this stays near the concurrency high-water mark while
  /// tasks-executed grows without bound.
  std::uint64_t blocks_carved() const {
    // order: relaxed — diagnostic counter; staleness is fine, no payload
    // is published through it.
    return blocks_carved_.load(std::memory_order_relaxed);
  }

  /// Cross-thread releases routed through the reclaim stack (relaxed).
  std::uint64_t remote_frees() const {
    // order: relaxed — diagnostic counter, as blocks_carved() above.
    return remote_frees_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    Slot* next = nullptr;       // freelist / reclaim link; dead while in use
    TaskPool* owner = nullptr;  // set once when the block is carved
    alignas(alignof(Task)) unsigned char storage[sizeof(Task)];
  };
  static_assert(std::is_standard_layout_v<Slot>,
                "slot_of recovers the Slot from the Task via offsetof");

  static Slot* slot_of(Task* task) {
    return reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(task) -
                                   offsetof(Slot, storage));
  }

  void carve_block() {
    auto block = std::make_unique<Slot[]>(kBlockSize);
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      block[i].owner = this;
      block[i].next = i + 1 < kBlockSize ? &block[i + 1] : nullptr;
    }
    free_list_ = &block[0];
    blocks_.push_back(std::move(block));
    // order: relaxed — owner-only diagnostic counter.
    blocks_carved_.fetch_add(1, std::memory_order_relaxed);
  }

  void push_remote(Slot* slot) {
    // order: relaxed — diagnostic counter; the CAS below synchronizes the
    // slot handoff itself.
    remote_frees_.fetch_add(1, std::memory_order_relaxed);
    // order: relaxed initial read — the CAS reloads on failure, and the
    // release on success is what publishes the link.
    Slot* head = reclaim_.load(std::memory_order_relaxed);
    do {
      slot->next = head;
      // order: release on success pairs with the owner's acquire exchange
      // in allocate() — the destructed slot contents happen-before reuse.
      // order: relaxed on failure — the loop retries with the freshly
      // loaded head and publishes nothing.
    } while (!reclaim_.compare_exchange_weak(head, slot,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  // Owner-only state on its own line(s); the remote-writable reclaim stack
  // padded away from it so thieves' frees don't invalidate the owner's
  // freelist cache line.
  Slot* free_list_ = nullptr;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  std::atomic<std::uint64_t> blocks_carved_{0};
  alignas(kDestructiveInterference) std::atomic<Slot*> reclaim_{nullptr};
  std::atomic<std::uint64_t> remote_frees_{0};
  char pad_[kDestructiveInterference -
            (sizeof(std::atomic<Slot*>) + sizeof(std::atomic<std::uint64_t>)) %
                kDestructiveInterference];
};

}  // namespace pjsched::runtime
