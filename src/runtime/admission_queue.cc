#include "src/runtime/admission_queue.h"

namespace pjsched::runtime {

AdmissionQueue::PushResult AdmissionQueue::push(Task* task, Task** evicted) {
  *evicted = nullptr;
  MutexLock lock(mu_);
  if (closed_) {
    ++stats_.rejected_closed;
    return PushResult::kRejected;
  }
  if (full_locked()) {
    switch (policy_) {
      case BackpressurePolicy::kBlock:
        // Plain predicate loop (not a wait-with-lambda): the thread-safety
        // analysis must see that full_locked()/closed_ are read under mu_,
        // and it cannot look inside a lambda body.
        while (full_locked() && !closed_) space_cv_.wait(mu_);
        if (closed_) {
          ++stats_.rejected_closed;
          return PushResult::kRejected;
        }
        break;
      case BackpressurePolicy::kRejectNewest:
        ++stats_.rejected_full;
        return PushResult::kRejected;
      case BackpressurePolicy::kShedOldest:
        *evicted = queue_.front();
        queue_.pop_front();
        ++stats_.shed;
        break;
    }
  }
  queue_.push_back(task);
  ++stats_.accepted;
  if (queue_.size() > stats_.peak_depth) stats_.peak_depth = queue_.size();
  return PushResult::kAccepted;
}

Task* AdmissionQueue::try_pop() {
  Task* t = nullptr;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return nullptr;
    t = queue_.front();
    queue_.pop_front();
    ++stats_.popped;
  }
  space_cv_.notify_one();
  return t;
}

Task* AdmissionQueue::try_pop_heaviest() {
  Task* t = nullptr;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return nullptr;
    auto best = queue_.begin();
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
      if ((*it)->job->weight() > (*best)->job->weight()) best = it;
    t = *best;
    queue_.erase(best);
    ++stats_.popped;
  }
  space_cv_.notify_one();
  return t;
}

void AdmissionQueue::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  space_cv_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.depth = queue_.size();
  return snapshot;
}

}  // namespace pjsched::runtime
