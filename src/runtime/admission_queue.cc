#include "src/runtime/admission_queue.h"

namespace pjsched::runtime {

void AdmissionQueue::push(Task* task) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(task);
}

Task* AdmissionQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return nullptr;
  Task* t = queue_.front();
  queue_.pop_front();
  return t;
}

Task* AdmissionQueue::try_pop_heaviest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return nullptr;
  auto best = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it)
    if ((*it)->job->weight() > (*best)->job->weight()) best = it;
  Task* t = *best;
  queue_.erase(best);
  return t;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace pjsched::runtime
