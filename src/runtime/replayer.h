// Replays a simulator Instance on the real threaded runtime: each job's
// DAG is submitted (via dag_executor) at its arrival time translated to
// wall-clock, with node work rendered as CPU spinning.  This is the
// end-to-end analogue of the paper's testbed experiment — the same
// workload object drives both the simulated comparison (Figure 2) and the
// real runtime.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {

/// Typed error for loading an instance replay file (the
/// workload/instance_io text format).  Callers that feed a daemon from
/// replay files must be able to tell a file that *ended early* (a short
/// read / partial final record — retry or refetch) from one whose content
/// is wrong (corrupt — quarantine it) and from plain I/O failure, so the
/// kind rides on the exception instead of being prose in a what() string.
class ReplayFileError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,         ///< the file could not be opened or read
    kTruncated,  ///< EOF before the 'endinstance' trailer (short read)
    kCorrupt,    ///< a record present in the file failed to parse
  };

  ReplayFileError(Kind kind, std::string path, const std::string& detail)
      : std::runtime_error("replay file '" + path + "': " + detail),
        kind_(kind),
        path_(std::move(path)) {}

  Kind kind() const { return kind_; }
  const std::string& path() const { return path_; }

 private:
  Kind kind_;
  std::string path_;
};

inline const char* to_string(ReplayFileError::Kind k) {
  switch (k) {
    case ReplayFileError::Kind::kIo: return "io";
    case ReplayFileError::Kind::kTruncated: return "truncated";
    case ReplayFileError::Kind::kCorrupt: return "corrupt";
  }
  return "?";
}

/// Loads a replay file written by workload::write_instance, surfacing
/// failures as ReplayFileError: kIo when the file cannot be read,
/// kTruncated when EOF arrives before the 'endinstance' trailer (the
/// short-read case that previously surfaced as a generic parse error — or,
/// for a truncation that splits a numeric token, could silently yield a
/// partial final record), kCorrupt when a fully-present record is
/// malformed.  Trailing garbage after 'endinstance' is kCorrupt.
core::Instance load_replay_instance(const std::string& path);

struct ReplayOptions {
  /// Wall-clock nanoseconds of spinning per simulated work unit.
  double ns_per_unit = 1000.0;
  /// Multiplier applied to arrival gaps when mapping simulated time to
  /// wall-clock (1.0 = the same scale as ns_per_unit implies; larger
  /// values stretch the arrival process, lowering load).
  double arrival_scale = 1.0;
};

struct ReplayReport {
  metrics::Summary flow_seconds;   ///< wall-clock flow-time summary
                                   ///< (completed jobs only)
  double max_weighted_flow_seconds = 0.0;
  /// Terminal outcomes of every submitted job; under fault injection or a
  /// bounded admission queue, completed < total.
  FlowRecorder::OutcomeCounts outcomes;
  PoolStats pool_stats;
  double wall_seconds = 0.0;       ///< total replay duration
};

/// Blocks until every job completes.  The pool must be freshly constructed
/// (its recorder aggregates everything submitted since creation).
ReplayReport replay_instance(ThreadPool& pool, const core::Instance& instance,
                             const ReplayOptions& options);

}  // namespace pjsched::runtime
