// Replays a simulator Instance on the real threaded runtime: each job's
// DAG is submitted (via dag_executor) at its arrival time translated to
// wall-clock, with node work rendered as CPU spinning.  This is the
// end-to-end analogue of the paper's testbed experiment — the same
// workload object drives both the simulated comparison (Figure 2) and the
// real runtime.
#pragma once

#include <cstdint>

#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {

struct ReplayOptions {
  /// Wall-clock nanoseconds of spinning per simulated work unit.
  double ns_per_unit = 1000.0;
  /// Multiplier applied to arrival gaps when mapping simulated time to
  /// wall-clock (1.0 = the same scale as ns_per_unit implies; larger
  /// values stretch the arrival process, lowering load).
  double arrival_scale = 1.0;
};

struct ReplayReport {
  metrics::Summary flow_seconds;   ///< wall-clock flow-time summary
                                   ///< (completed jobs only)
  double max_weighted_flow_seconds = 0.0;
  /// Terminal outcomes of every submitted job; under fault injection or a
  /// bounded admission queue, completed < total.
  FlowRecorder::OutcomeCounts outcomes;
  PoolStats pool_stats;
  double wall_seconds = 0.0;       ///< total replay duration
};

/// Blocks until every job completes.  The pool must be freshly constructed
/// (its recorder aggregates everything submitted since creation).
ReplayReport replay_instance(ThreadPool& pool, const core::Instance& instance,
                             const ReplayOptions& options);

}  // namespace pjsched::runtime
