// Fork-join algorithms layered on the runtime's spawn / wait_help
// primitives: parallel_reduce and parallel_invoke (parallel_for lives in
// thread_pool.h next to the pool).  All must be called from inside a task.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {

/// Parallel map-reduce over [begin, end): splits into chunks of at most
/// `grain`, evaluates `map(lo, hi) -> T` per chunk in parallel, then folds
/// the chunk results left-to-right with `reduce(T, T) -> T` starting from
/// `identity`.  The fold order is deterministic (chunk index order), so
/// non-associative floating-point reductions are reproducible.
template <typename T, typename MapFn, typename ReduceFn>
T parallel_reduce(TaskContext& ctx, std::size_t begin, std::size_t end,
                  std::size_t grain, T identity, MapFn map, ReduceFn reduce) {
  if (begin >= end) return identity;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1) return reduce(std::move(identity), map(begin, end));

  std::vector<T> partial(chunks);
  WaitGroup wg;
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain;
    ctx.spawn([&partial, &map, c, lo, hi](
                  TaskContext&) { partial[c] = map(lo, hi); },
              wg);
  }
  partial[chunks - 1] = map(begin + (chunks - 1) * grain, end);
  ctx.wait_help(wg);

  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c)
    acc = reduce(std::move(acc), std::move(partial[c]));
  return acc;
}

/// Runs the given callables as parallel subtasks and joins; the last one
/// executes inline on the calling worker (work-first).
///
/// Every callable receives a TaskContext& — *its own*, not the caller's:
/// a spawned branch may execute on a different worker, and spawning through
/// the wrong worker's context would break the deques' single-owner
/// invariant.  Recursive algorithms must thread the inner context down.
template <typename Last>
void parallel_invoke(TaskContext& ctx, Last&& last) {
  std::forward<Last>(last)(ctx);
}

template <typename First, typename... Rest>
void parallel_invoke(TaskContext& ctx, First&& first, Rest&&... rest) {
  WaitGroup wg;
  ctx.spawn(
      [fn = std::forward<First>(first)](TaskContext& inner) mutable {
        fn(inner);
      },
      wg);
  parallel_invoke(ctx, std::forward<Rest>(rest)...);
  ctx.wait_help(wg);
}

}  // namespace pjsched::runtime
