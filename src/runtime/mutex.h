// Annotated mutex / condition-variable wrappers for the runtime.
//
// Clang's thread-safety analysis only tracks capabilities it can see:
// libstdc++'s `std::mutex` carries no attributes, so locking it proves
// nothing.  `Mutex` is a zero-overhead wrapper (same layout, every method a
// direct forward) declared as a PJSCHED_CAPABILITY, and `MutexLock` is the
// RAII scoped capability the runtime locks with — `std::lock_guard` /
// `std::unique_lock` over a raw `std::mutex` are banned in src/runtime/ by
// the clang-tidy gate's companion conventions (docs/static-analysis.md).
//
// `CondVar` pairs with `Mutex`.  It forwards to `std::condition_variable`
// by adopting the already-held native mutex for the duration of the wait —
// no `condition_variable_any` indirection, identical codegen to the
// unannotated original.  Waits are annotated PJSCHED_REQUIRES(mu), which
// forces the caller to hold the lock *and* keeps guarded-predicate loops
// visible to the analysis (use `while (!pred) cv.wait(mu);` rather than a
// predicate lambda: the analysis cannot see that a lambda body runs under
// the caller's lock).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/runtime/annotations.h"

namespace pjsched::runtime {

class PJSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PJSCHED_ACQUIRE() { mu_.lock(); }
  void unlock() PJSCHED_RELEASE() { mu_.unlock(); }
  bool try_lock() PJSCHED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock holder; supports temporary release (watchdog callback
/// pattern: never hold a runtime lock across a user callback).
class PJSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PJSCHED_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PJSCHED_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. around a user callback)...
  void unlock() PJSCHED_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  /// ...and take it back before touching guarded state again.
  void lock() PJSCHED_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to `Mutex`.  All waits require the mutex held
/// (enforced by the analysis under clang); notify never requires it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, waits, and reacquires `mu` before
  /// returning.  May wake spuriously: always wait in a predicate loop.
  void wait(Mutex& mu) PJSCHED_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's MutexLock still owns the lock
  }

  /// Timed wait; returns true when it timed out (false = notified or
  /// spurious wake).  Reacquires `mu` before returning either way.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      PJSCHED_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pjsched::runtime
