#include "src/runtime/thread_pool.h"

#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace pjsched::runtime {

namespace {
// Set for the lifetime of each worker thread; lets submit() detect a call
// from inside a task body of the same pool (see the kBlock guard there).
thread_local const ThreadPool* t_worker_of_pool = nullptr;
}  // namespace

void TaskContext::spawn(TaskFn fn) {
  job_->add_pending();
  auto* task = new Task{job_, std::move(fn)};
  pool_->workers_[worker_]->deque.push(task);
}

void TaskContext::spawn(TaskFn fn, WaitGroup& wg) {
  wg.add();
  job_->add_pending();
  // The WaitGroup rides on the Task, not inside the body: execute() signals
  // it on every exit path (ran / threw / skipped-as-cancelled), which is
  // what lets wait_help guarantee a full drain before unwinding.
  auto* task = new Task{job_, std::move(fn), &wg};
  pool_->workers_[worker_]->deque.push(task);
}

void TaskContext::wait_help(WaitGroup& wg) {
  unsigned spins = 0;
  while (!wg.idle()) {
    if (pool_->try_run_one(worker_, /*helping=*/true)) {
      spins = 0;
    } else if (++spins > 64) {
      std::this_thread::yield();
    }
  }
  // Unwind cancelled bodies only *after* the join has drained: a sibling
  // subtask that slipped past the cancellation check may still be running
  // on another worker, holding a pointer to `wg` — which lives on this
  // task's stack and dies with the unwind.  Skipped subtasks signal the
  // WaitGroup too (execute() runs Task::wg on every path), so the drain
  // always terminates.
  if (job_->cancelled()) throw JobCancelledError();
}

ThreadPool::ThreadPool(const PoolOptions& options)
    : admission_(options.admission_capacity, options.backpressure),
      steal_k_(options.steal_k),
      admit_by_weight_(options.admit_by_weight),
      watchdog_sink_(options.watchdog_sink) {
  const unsigned n = options.workers == 0 ? 1 : options.workers;
  if (!options.fault_plan.empty())
    injector_ = std::make_unique<FaultInjector>(options.fault_plan, n);
  sim::Rng root_rng(options.seed);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto state = std::make_unique<WorkerState>();
    state->rng = root_rng.fork(i + 1);
    workers_.push_back(std::move(state));
  }
  for (unsigned i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  if (options.watchdog_interval.count() > 0) {
    watchdog_ = std::thread(
        [this, interval = options.watchdog_interval] { watchdog_main(interval); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

JobHandle ThreadPool::submit(TaskFn root, double weight) {
  SubmitOptions options;
  options.weight = weight;
  return submit(std::move(root), options);
}

JobHandle ThreadPool::submit(TaskFn root, const SubmitOptions& options) {
  if (!accepting_.load(std::memory_order_acquire))
    throw std::logic_error(
        "ThreadPool::submit: pool is shut down; submissions after shutdown() "
        "are a caller error");
  // A worker blocking in admission_.push can never drain the queue it is
  // waiting on; with every worker stuck the pool deadlocks.  Fail loudly
  // and deterministically (not just when the queue happens to be full).
  if (t_worker_of_pool == this && admission_.capacity() > 0 &&
      admission_.policy() == BackpressurePolicy::kBlock)
    throw std::logic_error(
        "ThreadPool::submit: called from a task body of this pool while the "
        "admission queue is bounded with BackpressurePolicy::kBlock; a "
        "blocked worker cannot drain the queue it waits on (deadlock). "
        "Submit from an external thread, use TaskContext::spawn, or pick a "
        "non-blocking backpressure policy");
  auto job =
      std::make_shared<Job>(jobs_submitted_.fetch_add(1) + 1, options.weight);
  job->mark_submitted();
  if (options.deadline.has_value())
    job->set_deadline(job->submit_time() + *options.deadline);
  job->add_pending();  // the root task
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    live_jobs_.push_back(job);
  }
  auto* task = new Task{job.get(), std::move(root)};
  Task* evicted = nullptr;
  const AdmissionQueue::PushResult result = admission_.push(task, &evicted);
  if (evicted != nullptr) terminate_unadmitted(evicted, /*rejected=*/false);
  if (result == AdmissionQueue::PushResult::kRejected)
    terminate_unadmitted(task, /*rejected=*/true);
  idle_cv_.notify_one();
  return job;
}

void ThreadPool::terminate_unadmitted(Task* task, bool rejected) {
  Job* job = task->job;
  // A job whose deadline already passed while it sat in the queue expired,
  // it was not shed — prefer the more informative outcome.
  if (job->deadline_passed(Clock::now()) &&
      job->try_cancel(JobOutcome::kDeadlineExpired)) {
    jobs_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  } else if (job->try_cancel(rejected ? JobOutcome::kRejected
                                      : JobOutcome::kShed)) {
    if (rejected)
      jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    else
      jobs_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  delete task;
  finish_job(job);  // the root never ran; drain its pending count
}

void ThreadPool::finish_job(Job* job) {
  if (job->finish_one()) {
    recorder_.record(*job);
    {
      // Increment under the lock so wait_all() cannot miss the wakeup
      // between checking its predicate and blocking.
      std::lock_guard<std::mutex> lock(done_mu_);
      jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return jobs_completed_.load(std::memory_order_acquire) ==
           jobs_submitted_.load(std::memory_order_acquire);
  });
}

void ThreadPool::shutdown() {
  bool expected = true;
  if (!accepting_.compare_exchange_strong(expected, false))
    return;  // already shut down (or shutting down on another thread)
  wait_all();
  stop_.store(true, std::memory_order_release);
  admission_.close();  // unblock submitters stuck on a full bounded queue
  idle_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // A submit() racing shutdown() may have enqueued a task after the final
  // drain; record such jobs as Shed rather than leaking them.
  while (Task* leftover = admission_.try_pop())
    terminate_unadmitted(leftover, /*rejected=*/false);
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  std::lock_guard<std::mutex> lock(done_mu_);
  live_jobs_.clear();
}

PoolStats ThreadPool::stats() const {
  PoolStats total;
  for (const auto& w : workers_) {
    total.steal_attempts +=
        w->counters.steal_attempts.load(std::memory_order_relaxed);
    total.successful_steals +=
        w->counters.successful_steals.load(std::memory_order_relaxed);
    total.admissions += w->counters.admissions.load(std::memory_order_relaxed);
    total.tasks_executed +=
        w->counters.tasks_executed.load(std::memory_order_relaxed);
    total.tasks_cancelled +=
        w->counters.tasks_cancelled.load(std::memory_order_relaxed);
  }
  total.faults_injected = injector_ ? injector_->faults_injected() : 0;
  total.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  total.jobs_deadline_expired =
      jobs_deadline_expired_.load(std::memory_order_relaxed);
  total.jobs_shed = jobs_shed_.load(std::memory_order_relaxed);
  total.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  total.watchdog_dumps = watchdog_dumps_.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t ThreadPool::total_tasks_executed() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_)
    total += w->counters.tasks_executed.load(std::memory_order_relaxed);
  return total;
}

std::string ThreadPool::dump_state() const {
  std::ostringstream out;
  const std::uint64_t submitted = jobs_submitted_.load(std::memory_order_acquire);
  const std::uint64_t completed = jobs_completed_.load(std::memory_order_acquire);
  out << "ThreadPool diagnostic dump\n"
      << "  jobs: submitted=" << submitted << " terminal=" << completed
      << " pending=" << submitted - completed << "\n"
      << "  admission queue: depth=" << admission_.size()
      << " capacity=" << admission_.capacity() << " ("
      << to_string(admission_.policy()) << ")\n";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerCounters& c = workers_[i]->counters;
    out << "  worker " << i << ": deque~=" << workers_[i]->deque.size_hint()
        << " tasks=" << c.tasks_executed.load(std::memory_order_relaxed)
        << " cancelled=" << c.tasks_cancelled.load(std::memory_order_relaxed)
        << " steals=" << c.successful_steals.load(std::memory_order_relaxed)
        << "/" << c.steal_attempts.load(std::memory_order_relaxed)
        << " admissions=" << c.admissions.load(std::memory_order_relaxed)
        << "\n";
  }
  constexpr std::size_t kMaxJobsListed = 16;
  std::size_t listed = 0, unfinished = 0;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    for (const JobHandle& job : live_jobs_) {
      if (job->finished()) continue;
      ++unfinished;
      if (listed >= kMaxJobsListed) continue;
      ++listed;
      out << "  job " << job->id() << ": outcome="
          << to_string(job->outcome()) << " pending=" << job->pending()
          << " age="
          << std::chrono::duration<double>(Clock::now() - job->submit_time())
                 .count()
          << "s";
      if (job->has_deadline())
        out << " deadline_in="
            << std::chrono::duration<double>(job->deadline() - Clock::now())
                   .count()
            << "s";
      out << "\n";
    }
  }
  if (unfinished > listed)
    out << "  ... and " << unfinished - listed << " more unfinished job(s)\n";
  return out.str();
}

void ThreadPool::watchdog_main(std::chrono::milliseconds interval) {
  std::uint64_t last_tasks = total_tasks_executed();
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    if (watchdog_cv_.wait_for(lock, interval,
                              [this] { return watchdog_stop_; }))
      break;
    const std::uint64_t tasks = total_tasks_executed();
    const bool pending = jobs_completed_.load(std::memory_order_acquire) <
                         jobs_submitted_.load(std::memory_order_acquire);
    if (pending && tasks == last_tasks) {
      watchdog_dumps_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream header;
      header << "pjsched watchdog: no task executed for "
             << interval.count() << " ms with pending jobs\n";
      const std::string report = header.str() + dump_state();
      lock.unlock();  // never hold our mutex across the user callback
      if (watchdog_sink_)
        watchdog_sink_(report);
      else
        std::cerr << report;
      lock.lock();
    }
    last_tasks = tasks;
  }
}

void ThreadPool::execute(Task* task, unsigned worker) {
  Job* job = task->job;
  WorkerState& w = *workers_[worker];
  if (injector_) {
    const auto stall = injector_->worker_stall(worker);
    if (stall.count() > 0) std::this_thread::sleep_for(stall);
  }
  if (!job->cancelled() && job->deadline_passed(Clock::now()) &&
      job->try_cancel(JobOutcome::kDeadlineExpired))
    jobs_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  if (job->cancelled()) {
    // Skip the body; just drain the pending count below.
    w.counters.tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else {
    try {
      if (injector_) {
        if (const auto fault = injector_->next_task_fault())
          throw FaultInjectedError(*fault);
      }
      TaskContext ctx(this, worker, job);
      task->fn(ctx);
    } catch (const JobCancelledError&) {
      // wait_help unwound the body because the job was already cancelled;
      // the cancellation cause is recorded elsewhere.
    } catch (const std::exception& e) {
      if (job->try_cancel(JobOutcome::kFailed)) {
        job->set_error(e.what());
        jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      if (job->try_cancel(JobOutcome::kFailed)) {
        job->set_error("task body threw a non-std::exception");
        jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Always signal the task's join — on the skip path and the throw paths
  // too — so a WaitGroup drains even under cancellation and wait_help can
  // safely unwind only once no sibling references it (see Task::wg).
  if (task->wg != nullptr) task->wg->done();
  delete task;
  w.counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  finish_job(job);
}

Task* ThreadPool::try_steal(unsigned thief) {
  const unsigned n = workers();
  if (n <= 1) return nullptr;
  WorkerState& me = *workers_[thief];
  unsigned victim = static_cast<unsigned>(me.rng.uniform_int(n - 1));
  if (victim >= thief) ++victim;
  Task* task = nullptr;
  if (workers_[victim]->deque.steal(task)) return task;
  return nullptr;
}

bool ThreadPool::try_run_one(unsigned index, bool helping) {
  WorkerState& w = *workers_[index];

  Task* task = nullptr;
  if (w.deque.pop(task)) {
    w.fail_count = 0;
    execute(task, index);
    return true;
  }

  // Admission is policy-gated: only after k consecutive failed steals
  // (immediately when k == 0).  Helpers joining a WaitGroup never admit —
  // starting a brand-new job in the middle of a join would delay the join
  // arbitrarily.
  if (!helping && w.fail_count >= steal_k_) {
    task = admit_by_weight_ ? admission_.try_pop_heaviest()
                            : admission_.try_pop();
    if (task != nullptr) {
      w.counters.admissions.fetch_add(1, std::memory_order_relaxed);
      w.fail_count = 0;
      if (injector_) {
        const auto delay = injector_->admission_delay();
        if (delay.count() > 0) std::this_thread::sleep_for(delay);
      }
      execute(task, index);
      return true;
    }
  }

  w.counters.steal_attempts.fetch_add(1, std::memory_order_relaxed);
  task = try_steal(index);
  if (task != nullptr) {
    w.counters.successful_steals.fetch_add(1, std::memory_order_relaxed);
    w.fail_count = 0;
    execute(task, index);
    return true;
  }
  ++w.fail_count;
  return false;
}

void ThreadPool::worker_main(unsigned index) {
  t_worker_of_pool = this;
  unsigned idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index, /*helping=*/false)) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins > 128) {
      std::unique_lock<std::mutex> lock(idle_mu_);
      idle_cv_.wait_for(lock, std::chrono::microseconds(500));
      idle_spins = 0;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace pjsched::runtime
