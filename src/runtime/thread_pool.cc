#include "src/runtime/thread_pool.h"

#include <chrono>
#include <stdexcept>

namespace pjsched::runtime {

void TaskContext::spawn(TaskFn fn) {
  job_->add_pending();
  auto* task = new Task{job_, std::move(fn)};
  pool_->workers_[worker_]->deque.push(task);
}

void TaskContext::spawn(TaskFn fn, WaitGroup& wg) {
  wg.add();
  spawn([fn = std::move(fn), &wg](TaskContext& ctx) {
    fn(ctx);
    wg.done();
  });
}

void TaskContext::wait_help(WaitGroup& wg) {
  unsigned spins = 0;
  while (!wg.idle()) {
    if (pool_->try_run_one(worker_, /*helping=*/true)) {
      spins = 0;
    } else if (++spins > 64) {
      std::this_thread::yield();
    }
  }
}

ThreadPool::ThreadPool(const PoolOptions& options)
    : steal_k_(options.steal_k), admit_by_weight_(options.admit_by_weight) {
  const unsigned n = options.workers == 0 ? 1 : options.workers;
  sim::Rng root_rng(options.seed);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto state = std::make_unique<WorkerState>();
    state->rng = root_rng.fork(i + 1);
    workers_.push_back(std::move(state));
  }
  for (unsigned i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

JobHandle ThreadPool::submit(TaskFn root, double weight) {
  if (!accepting_.load(std::memory_order_acquire))
    throw std::logic_error("ThreadPool::submit: pool is shutting down");
  auto job = std::make_shared<Job>(jobs_submitted_.fetch_add(1) + 1, weight);
  job->mark_submitted();
  job->add_pending();  // the root task
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    live_jobs_.push_back(job);
  }
  admission_.push(new Task{job.get(), std::move(root)});
  idle_cv_.notify_one();
  return job;
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return jobs_completed_.load(std::memory_order_acquire) ==
           jobs_submitted_.load(std::memory_order_acquire);
  });
}

void ThreadPool::shutdown() {
  bool expected = true;
  if (!accepting_.compare_exchange_strong(expected, false))
    return;  // already shut down (or shutting down on another thread)
  wait_all();
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  std::lock_guard<std::mutex> lock(done_mu_);
  live_jobs_.clear();
}

PoolStats ThreadPool::stats() const {
  PoolStats total;
  for (const auto& w : workers_) {
    total.steal_attempts += w->stats.steal_attempts;
    total.successful_steals += w->stats.successful_steals;
    total.admissions += w->stats.admissions;
    total.tasks_executed += w->stats.tasks_executed;
  }
  return total;
}

void ThreadPool::execute(Task* task, unsigned worker) {
  Job* job = task->job;
  {
    TaskContext ctx(this, worker, job);
    task->fn(ctx);
  }
  delete task;
  ++workers_[worker]->stats.tasks_executed;
  if (job->finish_one()) {
    recorder_.record(*job);
    jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
    done_cv_.notify_all();
  }
}

Task* ThreadPool::try_steal(unsigned thief) {
  const unsigned n = workers();
  if (n <= 1) return nullptr;
  WorkerState& me = *workers_[thief];
  unsigned victim = static_cast<unsigned>(me.rng.uniform_int(n - 1));
  if (victim >= thief) ++victim;
  Task* task = nullptr;
  if (workers_[victim]->deque.steal(task)) return task;
  return nullptr;
}

bool ThreadPool::try_run_one(unsigned index, bool helping) {
  WorkerState& w = *workers_[index];

  Task* task = nullptr;
  if (w.deque.pop(task)) {
    w.fail_count = 0;
    execute(task, index);
    return true;
  }

  // Admission is policy-gated: only after k consecutive failed steals
  // (immediately when k == 0).  Helpers joining a WaitGroup never admit —
  // starting a brand-new job in the middle of a join would delay the join
  // arbitrarily.
  if (!helping && w.fail_count >= steal_k_) {
    task = admit_by_weight_ ? admission_.try_pop_heaviest()
                            : admission_.try_pop();
    if (task != nullptr) {
      ++w.stats.admissions;
      w.fail_count = 0;
      execute(task, index);
      return true;
    }
  }

  ++w.stats.steal_attempts;
  task = try_steal(index);
  if (task != nullptr) {
    ++w.stats.successful_steals;
    w.fail_count = 0;
    execute(task, index);
    return true;
  }
  ++w.fail_count;
  return false;
}

void ThreadPool::worker_main(unsigned index) {
  unsigned idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index, /*helping=*/false)) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins > 128) {
      std::unique_lock<std::mutex> lock(idle_mu_);
      idle_cv_.wait_for(lock, std::chrono::microseconds(500));
      idle_spins = 0;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace pjsched::runtime
