#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace pjsched::runtime {

namespace {
// Set for the lifetime of each worker thread; lets submit() detect a call
// from inside a task body of the same pool (see the kBlock guard there).
thread_local const ThreadPool* t_worker_of_pool = nullptr;

// Victims probed per steal round (bounded multi-probe): a failed round has
// looked at several deques, so fail_count — which still counts *rounds*,
// preserving the paper's steal-k admission semantics — represents real
// evidence of an idle system rather than one unlucky coin flip.
constexpr unsigned kStealProbes = 4;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}
}  // namespace

void TaskContext::spawn(TaskFn fn) {
  job_->add_pending();
  state_->deque.push(state_->task_pool.allocate(job_, std::move(fn), nullptr));
}

void TaskContext::spawn(TaskFn fn, WaitGroup& wg) {
  wg.add();
  job_->add_pending();
  // The WaitGroup rides on the Task, not inside the body: execute() signals
  // it on every exit path (ran / threw / skipped-as-cancelled), which is
  // what lets wait_help guarantee a full drain before unwinding.
  state_->deque.push(state_->task_pool.allocate(job_, std::move(fn), &wg));
}

void TaskContext::wait_help(WaitGroup& wg) {
  unsigned spins = 0;
  while (!wg.idle()) {
    if (pool_->try_run_one(worker_, *state_, /*helping=*/true)) {
      spins = 0;
    } else if (++spins > 64) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  // Unwind cancelled bodies only *after* the join has drained: a sibling
  // subtask that slipped past the cancellation check may still be running
  // on another worker, holding a pointer to `wg` — which lives on this
  // task's stack and dies with the unwind.  Skipped subtasks signal the
  // WaitGroup too (execute() runs Task::wg on every path), so the drain
  // always terminates.
  if (job_->cancelled()) throw JobCancelledError();
}

bool TaskContext::poll_deadline() {
  if (job_->cancelled()) return true;
  if (job_->has_deadline() && job_->deadline_passed(Clock::now()) &&
      job_->try_cancel(JobOutcome::kDeadlineExpired))
    // order: relaxed — diagnostic tally; try_cancel's CAS is the
    // synchronizing outcome transition (same as the execute() check).
    pool_->jobs_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  return job_->cancelled();
}

ThreadPool::ThreadPool(const PoolOptions& options)
    : admission_(options.admission_capacity, options.backpressure),
      // One recorder shard per worker plus one shared by every non-worker
      // caller (submit-side rejections, the shutdown drain).
      recorder_((options.workers == 0 ? 1 : options.workers) + 1),
      steal_k_(options.steal_k),
      admit_by_weight_(options.admit_by_weight),
      watchdog_sink_(options.watchdog_sink) {
  const unsigned n = options.workers == 0 ? 1 : options.workers;
  if (!options.fault_plan.empty())
    injector_ = std::make_unique<FaultInjector>(options.fault_plan, n);
  sim::Rng root_rng(options.seed);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto state = std::make_unique<WorkerState>();
    state->rng = root_rng.fork(i + 1);
    workers_.push_back(std::move(state));
  }
  for (unsigned i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  if (options.watchdog_interval.count() > 0) {
    watchdog_ = std::thread(
        [this, interval = options.watchdog_interval] { watchdog_main(interval); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

JobHandle ThreadPool::submit(TaskFn root, double weight) {
  SubmitOptions options;
  options.weight = weight;
  return submit(std::move(root), options);
}

JobHandle ThreadPool::submit(TaskFn root, const SubmitOptions& options) {
  if (!accepting_.load(std::memory_order_acquire))
    throw std::logic_error(
        "ThreadPool::submit: pool is shut down; submissions after shutdown() "
        "are a caller error");
  // A worker blocking in admission_.push can never drain the queue it is
  // waiting on; with every worker stuck the pool deadlocks.  Fail loudly
  // and deterministically (not just when the queue happens to be full).
  if (t_worker_of_pool == this && admission_.capacity() > 0 &&
      admission_.policy() == BackpressurePolicy::kBlock)
    throw std::logic_error(
        "ThreadPool::submit: called from a task body of this pool while the "
        "admission queue is bounded with BackpressurePolicy::kBlock; a "
        "blocked worker cannot drain the queue it waits on (deadlock). "
        "Submit from an external thread, use TaskContext::spawn, or pick a "
        "non-blocking backpressure policy");
  // order: acq_rel (was an implicit seq_cst) — the release half orders the
  // increment before this job's publication via the admission queue, so a
  // completion comparing jobs_completed_ == jobs_submitted_ (both acquire)
  // can never count a job whose submission it cannot see; nothing needs a
  // single total order across *both* counters, so seq_cst bought nothing.
  auto job = std::make_shared<Job>(
      jobs_submitted_.fetch_add(1, std::memory_order_acq_rel) + 1,
      options.weight);
  job->mark_submitted();
  if (options.deadline.has_value())
    job->set_deadline(job->submit_time() + *options.deadline);
  job->add_pending();  // the root task
  {
    MutexLock lock(done_mu_);
    live_jobs_.push_back(job);
  }
  Task* task;
  {
    MutexLock lock(external_mu_);
    task = external_pool_.allocate(job.get(), std::move(root), nullptr);
  }
  Task* evicted = nullptr;
  const AdmissionQueue::PushResult result = admission_.push(task, &evicted);
  if (evicted != nullptr) terminate_unadmitted(evicted, /*rejected=*/false);
  if (result == AdmissionQueue::PushResult::kRejected)
    terminate_unadmitted(task, /*rejected=*/true);
  idle_cv_.notify_one();
  return job;
}

void ThreadPool::terminate_unadmitted(Task* task, bool rejected) {
  Job* job = task->job;
  // A job whose deadline already passed while it sat in the queue expired,
  // it was not shed — prefer the more informative outcome.
  // order: relaxed (all three tallies) — monotone outcome counters read by
  // stats() only; the authoritative outcome transition is the try_cancel
  // CAS, which carries the ordering.
  if (job->deadline_passed(Clock::now()) &&
      job->try_cancel(JobOutcome::kDeadlineExpired)) {
    jobs_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  } else if (job->try_cancel(rejected ? JobOutcome::kRejected
                                      : JobOutcome::kShed)) {
    // order: relaxed — same monotone-tally contract as above.
    if (rejected)
      jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    else
      jobs_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  // Runs on submit / shutdown threads, never a worker: no local pool, the
  // slot returns to its owner via the lock-free reclaim path.
  TaskPool::release(task, /*local=*/nullptr);
  finish_job(job, external_shard());  // the root never ran; drain pending
}

void ThreadPool::finish_job(Job* job, unsigned recorder_shard) {
  if (job->finish_one()) {
    recorder_.record(*job, recorder_shard);
    // Hot path: one RMW per job, no lock.  Only the completion that
    // observes itself as the *last outstanding job* touches done_mu_.
    // order: acq_rel — release publishes this job's recorder write before
    // the count; acquire lets the final completion see every prior one.
    const std::uint64_t done =
        jobs_completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == jobs_submitted_.load(std::memory_order_acquire)) {
      // The empty critical section pairs with wait_all()'s locked predicate
      // check: the notify cannot slip between a waiter evaluating its
      // predicate (and seeing the pre-increment count) and blocking.  If a
      // concurrent submit made the equality stale, that job's own
      // completion re-notifies later — waiters re-check under the lock.
      { MutexLock lock(done_mu_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_all() {
  MutexLock lock(done_mu_);
  while (jobs_completed_.load(std::memory_order_acquire) !=
         jobs_submitted_.load(std::memory_order_acquire))
    done_cv_.wait(done_mu_);
}

void ThreadPool::shutdown() {
  bool expected = true;
  // order: acq_rel (was an implicit seq_cst) — acquire so the winning
  // shutdown observes everything published before the last submit; release
  // so submit()'s acquire load of accepting_ sees the close.  The CAS only
  // arbitrates which caller runs the shutdown sequence; no cross-variable
  // total order is involved.  Failure is acquire: the loser returns
  // immediately and must still see the winner's progress coherently.
  if (!accepting_.compare_exchange_strong(expected, false,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
    return;  // already shut down (or shutting down on another thread)
  wait_all();
  stop_.store(true, std::memory_order_release);
  admission_.close();  // unblock submitters stuck on a full bounded queue
  idle_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // A submit() racing shutdown() may have enqueued a task after the final
  // drain; record such jobs as Shed rather than leaking them.
  while (Task* leftover = admission_.try_pop())
    terminate_unadmitted(leftover, /*rejected=*/false);
  if (watchdog_.joinable()) {
    {
      MutexLock lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  MutexLock lock(done_mu_);
  live_jobs_.clear();
}

std::vector<ThreadPool::WorkerSnapshot> ThreadPool::snapshot_workers() const {
  std::vector<WorkerSnapshot> snaps;
  snaps.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerSnapshot s;
    s.deque_hint = w->deque.size_hint();
    // order: relaxed throughout — single-writer diagnostic counters (see
    // WorkerCounters::bump); a snapshot may lag the writer but each value
    // is a real past value, and no payload is published through them.
    s.steal_attempts = w->counters.steal_attempts.load(std::memory_order_relaxed);
    s.successful_steals =
        w->counters.successful_steals.load(std::memory_order_relaxed);
    // order: relaxed — same single-writer diagnostic contract.
    s.admissions = w->counters.admissions.load(std::memory_order_relaxed);
    // order: relaxed — same single-writer diagnostic contract as above.
    s.tasks_executed = w->counters.tasks_executed.load(std::memory_order_relaxed);
    s.tasks_cancelled =
        w->counters.tasks_cancelled.load(std::memory_order_relaxed);
    s.slab_blocks = w->task_pool.blocks_carved();
    s.remote_frees = w->task_pool.remote_frees();
    snaps.push_back(s);
  }
  return snaps;
}

PoolStats ThreadPool::stats() const {
  PoolStats total;
  for (const WorkerSnapshot& s : snapshot_workers()) {
    total.steal_attempts += s.steal_attempts;
    total.successful_steals += s.successful_steals;
    total.admissions += s.admissions;
    total.tasks_executed += s.tasks_executed;
    total.tasks_cancelled += s.tasks_cancelled;
    total.task_slab_blocks += s.slab_blocks;
    total.task_remote_frees += s.remote_frees;
  }
  {
    // The external pool's slab counters are themselves atomic, but the
    // pool object is annotated as guarded by external_mu_; stats() is a
    // report-time path, so the brief lock is cheaper than weakening the
    // annotation for every accessor.
    MutexLock lock(external_mu_);
    total.task_slab_blocks += external_pool_.blocks_carved();
    total.task_remote_frees += external_pool_.remote_frees();
  }
  total.faults_injected = injector_ ? injector_->faults_injected() : 0;
  // order: relaxed throughout — outcome tallies are monotone diagnostic
  // counters; stats() promises a coherent one-pass snapshot, not a
  // linearized cross-counter view.
  total.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  total.jobs_deadline_expired =
      jobs_deadline_expired_.load(std::memory_order_relaxed);
  // order: relaxed — same diagnostic-counter contract as above.
  total.jobs_shed = jobs_shed_.load(std::memory_order_relaxed);
  total.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  total.watchdog_dumps = watchdog_dumps_.load(std::memory_order_relaxed);
  return total;
}

std::string ThreadPool::dump_state() const {
  std::ostringstream out;
  const std::uint64_t submitted = jobs_submitted_.load(std::memory_order_acquire);
  const std::uint64_t completed = jobs_completed_.load(std::memory_order_acquire);
  // One pass over the workers; totals and per-worker rows below are views
  // of the same snapshot, so they always add up.
  const std::vector<WorkerSnapshot> snaps = snapshot_workers();
  std::uint64_t total_tasks = 0, total_blocks = 0;
  {
    MutexLock lock(external_mu_);  // external_pool_ is guarded (see header)
    total_blocks = external_pool_.blocks_carved();
  }
  for (const WorkerSnapshot& s : snaps) {
    total_tasks += s.tasks_executed;
    total_blocks += s.slab_blocks;
  }
  // One stats() call: depth, peak, and the shed/reject tallies all come
  // from the same lock hold, so the dump's queue line always adds up.
  const AdmissionQueue::Stats qs = admission_.stats();
  out << "ThreadPool diagnostic dump\n"
      << "  jobs: submitted=" << submitted << " terminal=" << completed
      << " pending=" << submitted - completed << "\n"
      << "  tasks executed=" << total_tasks
      << " slab_blocks=" << total_blocks << "\n"
      << "  admission queue: depth=" << qs.depth << " peak=" << qs.peak_depth
      << " capacity=" << admission_.capacity() << " ("
      << to_string(admission_.policy()) << ") accepted=" << qs.accepted
      << " popped=" << qs.popped << " shed=" << qs.shed
      << " rejected=" << qs.rejected_full + qs.rejected_closed << "\n";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const WorkerSnapshot& s = snaps[i];
    out << "  worker " << i << ": deque~=" << s.deque_hint
        << " tasks=" << s.tasks_executed << " cancelled=" << s.tasks_cancelled
        << " steals=" << s.successful_steals << "/" << s.steal_attempts
        << " admissions=" << s.admissions << " slab_blocks=" << s.slab_blocks
        << " remote_frees=" << s.remote_frees << "\n";
  }
  constexpr std::size_t kMaxJobsListed = 16;
  std::size_t listed = 0, unfinished = 0;
  {
    MutexLock lock(done_mu_);
    for (const JobHandle& job : live_jobs_) {
      if (job->finished()) continue;
      ++unfinished;
      if (listed >= kMaxJobsListed) continue;
      ++listed;
      out << "  job " << job->id() << ": outcome="
          << to_string(job->outcome()) << " pending=" << job->pending()
          << " age="
          << std::chrono::duration<double>(Clock::now() - job->submit_time())
                 .count()
          << "s";
      if (job->has_deadline())
        out << " deadline_in="
            << std::chrono::duration<double>(job->deadline() - Clock::now())
                   .count()
            << "s";
      out << "\n";
    }
  }
  if (unfinished > listed)
    out << "  ... and " << unfinished - listed << " more unfinished job(s)\n";
  return out.str();
}

void ThreadPool::watchdog_main(std::chrono::milliseconds interval) {
  std::uint64_t last_tasks = stats().tasks_executed;
  // Plain timed-wait loop instead of wait_for-with-predicate: the lambda
  // body would read watchdog_stop_ where the thread-safety analysis cannot
  // prove the lock is held.  A spurious wake (`!timed_out`) re-arms a full
  // interval — harmless drift for a stall detector.
  MutexLock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    const bool timed_out = watchdog_cv_.wait_for(watchdog_mu_, interval);
    if (watchdog_stop_) break;
    if (!timed_out) continue;
    // One coherent snapshot per tick: the progress decision and the value
    // carried to the next tick come from the same pass over the workers.
    const std::uint64_t tasks = stats().tasks_executed;
    const bool pending = jobs_completed_.load(std::memory_order_acquire) <
                         jobs_submitted_.load(std::memory_order_acquire);
    if (pending && tasks == last_tasks) {
      // order: relaxed — diagnostic tally; readers need no ordering.
      watchdog_dumps_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream header;
      header << "pjsched watchdog: no task executed for "
             << interval.count() << " ms with pending jobs\n";
      const std::string report = header.str() + dump_state();
      lock.unlock();  // never hold our mutex across the user callback
      if (watchdog_sink_)
        watchdog_sink_(report);
      else
        std::cerr << report;
      lock.lock();
    }
    last_tasks = tasks;
  }
}

void ThreadPool::execute(Task* task, unsigned worker, WorkerState& w) {
  Job* job = task->job;
  if (injector_) {
    const auto stall = injector_->worker_stall(worker);
    if (stall.count() > 0) std::this_thread::sleep_for(stall);
  }
  // Deadline enforcement pays its clock read only for jobs that have one —
  // Clock::now() per task is real money at fine grain.
  if (job->has_deadline() && !job->cancelled() &&
      job->deadline_passed(Clock::now()) &&
      job->try_cancel(JobOutcome::kDeadlineExpired))
    // order: relaxed — diagnostic tally; try_cancel's CAS is the
    // synchronizing outcome transition.
    jobs_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  if (job->cancelled()) {
    // Skip the body; just drain the pending count below.
    detail::WorkerCounters::bump(w.counters.tasks_cancelled);
  } else {
    try {
      if (injector_) {
        if (const auto fault = injector_->next_task_fault())
          throw FaultInjectedError(*fault);
      }
      TaskContext ctx(this, &w, worker, job);
      task->fn(ctx);
    } catch (const JobCancelledError&) {
      // wait_help unwound the body because the job was already cancelled;
      // the cancellation cause is recorded elsewhere.
    } catch (const std::exception& e) {
      if (job->try_cancel(JobOutcome::kFailed)) {
        job->set_error(e.what());
        // order: relaxed — diagnostic tally; the CAS above synchronizes.
        jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      if (job->try_cancel(JobOutcome::kFailed)) {
        job->set_error("task body threw a non-std::exception");
        // order: relaxed — diagnostic tally; the CAS above synchronizes.
        jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Always signal the task's join — on the skip path and the throw paths
  // too — so a WaitGroup drains even under cancellation and wait_help can
  // safely unwind only once no sibling references it (see Task::wg).
  if (task->wg != nullptr) task->wg->done();
  // Recycle the slot: a local push when this worker allocated the task, a
  // lock-free reclaim push to the owner (another worker, or the external
  // submission pool) otherwise.
  TaskPool::release(task, &w.task_pool);
  detail::WorkerCounters::bump(w.counters.tasks_executed);
  finish_job(job, worker);
}

Task* ThreadPool::try_steal(unsigned thief, WorkerState& me) {
  const unsigned n = workers();
  if (n <= 1) return nullptr;
  // Bounded multi-probe round: start at a random victim, rotate through up
  // to kStealProbes of them.  One rng draw per round (not per probe).
  const unsigned probes = std::min(kStealProbes, n - 1);
  unsigned victim = static_cast<unsigned>(me.rng.uniform_int(n - 1));
  if (victim >= thief) ++victim;
  for (unsigned p = 0; p < probes; ++p) {
    Task* task = nullptr;
    if (workers_[victim]->deque.steal(task)) return task;
    ++victim;
    if (victim == thief) ++victim;
    if (victim >= n) victim = thief == 0 ? 1 : 0;
  }
  return nullptr;
}

bool ThreadPool::try_run_one(unsigned index, WorkerState& w, bool helping) {
  Task* task = nullptr;
  if (w.deque.pop(task)) {
    w.fail_count = 0;
    execute(task, index, w);
    return true;
  }

  // Admission is policy-gated: only after k consecutive failed steal
  // *rounds* (immediately when k == 0).  Helpers joining a WaitGroup never
  // admit — starting a brand-new job in the middle of a join would delay
  // the join arbitrarily.
  if (!helping && w.fail_count >= steal_k_) {
    task = admit_by_weight_ ? admission_.try_pop_heaviest()
                            : admission_.try_pop();
    if (task != nullptr) {
      detail::WorkerCounters::bump(w.counters.admissions);
      w.fail_count = 0;
      if (injector_) {
        const auto delay = injector_->admission_delay();
        if (delay.count() > 0) std::this_thread::sleep_for(delay);
      }
      execute(task, index, w);
      return true;
    }
  }

  detail::WorkerCounters::bump(w.counters.steal_attempts);
  task = try_steal(index, w);
  if (task != nullptr) {
    detail::WorkerCounters::bump(w.counters.successful_steals);
    w.fail_count = 0;
    execute(task, index, w);
    return true;
  }
  ++w.fail_count;
  return false;
}

void ThreadPool::worker_main(unsigned index) {
  t_worker_of_pool = this;
  WorkerState& w = *workers_[index];
  // Idle backoff ladder: spin (pause), then yield, then exponentially
  // growing timed waits on the idle CV (64 µs up to ~1 ms).  submit()
  // notifies the CV, so a fresh job still wakes a deeply idle worker
  // immediately; the ladder only bounds how hard an idle pool burns CPU.
  unsigned idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index, w, /*helping=*/false)) {
      idle_rounds = 0;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds <= 32) {
      cpu_relax();
    } else if (idle_rounds <= 64) {
      std::this_thread::yield();
    } else {
      const unsigned shift = std::min(idle_rounds - 65, 4u);
      MutexLock lock(idle_mu_);
      idle_cv_.wait_for(idle_mu_,
                        std::chrono::microseconds(std::uint64_t{64} << shift));
    }
  }
}

}  // namespace pjsched::runtime
