// Small-buffer move-only callable for the runtime hot path.
//
// `std::function` type-erases through a heap allocation whenever the
// callable exceeds its tiny SBO window (16 bytes of trivially-copyable
// state in libstdc++) — so every `parallel_for` grain and nearly every
// `spawn` paid an allocator round-trip just to carry `[lo, hi, &body]`.
// InlineFn replaces it on the Task hot path:
//
//   * captures up to kInlineCapacity bytes (48 — three cache-line quarters,
//     enough for every closure the runtime itself builds) are stored inline
//     in the Task slab slot: zero allocator traffic per task;
//   * larger or over-aligned or potentially-throwing-move callables fall
//     back to a single heap allocation, preserving `std::function`'s
//     generality (dag_executor bodies, user lambdas of any size);
//   * move-only: a Task is executed exactly once by exactly one worker, so
//     copyability — the reason std::function forbids move-only captures —
//     is pure cost.  (This also lets bodies own move-only resources.)
//
// Dispatch is one indirect call through a per-callable-type static vtable
// (invoke / relocate / destroy), the same technique as libstdc++'s
// _M_manager but without the copy machinery.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pjsched::runtime {

template <typename Signature>
class InlineFn;

template <typename R, typename... Args>
class InlineFn<R(Args...)> {
 public:
  /// Largest capture stored without allocating.  48 bytes fits six
  /// pointers — every closure spawned by parallel_for / parallel_reduce /
  /// parallel_invoke / the DAG executor node hop is at most half that.
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vtable_ = &kHeapOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(other.buf_, buf_);
      other.vtable_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(other.buf_, buf_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// True when the callable lives in the inline buffer (no allocation).
  bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

  R operator()(Args... args) {
    return vtable_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    /// Move-constructs *self into dst, then destroys *self.  noexcept by
    /// construction: inline storage requires a nothrow move; heap storage
    /// relocates by copying the pointer.
    void (*relocate)(void* self, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable kInlineOps = {
      /*invoke=*/[](void* self, Args&&... args) -> R {
        return (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* self, void* dst) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(self)));
        static_cast<Fn*>(self)->~Fn();
      },
      /*destroy=*/[](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr VTable kHeapOps = {
      /*invoke=*/[](void* self, Args&&... args) -> R {
        return (**static_cast<Fn**>(self))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* self, void* dst) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(self);
      },
      /*destroy=*/[](void* self) noexcept { delete *static_cast<Fn**>(self); },
      /*inline_storage=*/false,
  };

  const VTable* vtable_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineCapacity];
};

}  // namespace pjsched::runtime
