// The TBB-style multiprogrammed work-stealing thread pool (paper Section 6:
// "We extended TBB to schedule multiple jobs arriving online by adding a
// global FIFO queue for admitting jobs and we implement both admit-first
// and steal-k-first").
//
// Architecture:
//   * one worker thread per configured slot, each owning a Chase–Lev deque;
//   * a global FIFO AdmissionQueue of job root tasks — optionally bounded,
//     with a backpressure policy (block / reject-newest / shed-oldest) so
//     overload degrades gracefully instead of growing without bound;
//   * workers run: local pop -> (policy-gated) admit -> random steal;
//     under steal-k-first a worker admits only after k consecutive failed
//     steal attempts, under admit-first (k = 0) it checks the global queue
//     as soon as its deque is empty;
//   * tasks spawn subtasks onto their worker's deque (TaskContext::spawn)
//     and join with help-first waiting (TaskContext::wait_help), which
//     executes other tasks instead of blocking the thread;
//   * job flow times and terminal outcomes land in a FlowRecorder.
//
// Fault tolerance (see docs/runtime.md, "Failure model"):
//   * an exception escaping a task body is contained at the task boundary:
//     the job is marked Failed, its not-yet-started tasks are skipped, and
//     the pool keeps scheduling every other job;
//   * submit() accepts an optional per-job deadline; once it passes, the
//     job is cancelled and recorded as DeadlineExpired;
//   * a seeded FaultPlan can inject task failures, per-worker stalls, and
//     admission delays for reproducible robustness experiments;
//   * an opt-in watchdog thread detects lack of progress (pending jobs but
//     no task executions across an interval) and emits a diagnostic dump
//     instead of hanging silently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/admission_queue.h"
#include "src/runtime/annotations.h"
#include "src/runtime/chase_lev_deque.h"
#include "src/runtime/fault_injection.h"
#include "src/runtime/flow_recorder.h"
#include "src/runtime/interference.h"
#include "src/runtime/job.h"
#include "src/runtime/mutex.h"
#include "src/runtime/task_pool.h"
#include "src/sim/rng.h"

namespace pjsched::runtime {

struct PoolOptions {
  unsigned workers = std::thread::hardware_concurrency();
  /// Failed steal attempts before a worker may admit from the global queue
  /// (0 = admit-first; the paper's empirical choice is 16).
  unsigned steal_k = 0;
  /// Extension: admit the heaviest queued job instead of the oldest
  /// (mirrors the simulator's "-bwf" work-stealing variants).
  bool admit_by_weight = false;
  std::uint64_t seed = 1;

  /// Admission-queue bound; 0 = unbounded (the seed behavior).
  std::size_t admission_capacity = 0;
  /// What a full bounded queue does with a new submission.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Faults to inject (empty plan = none; see fault_injection.h).
  FaultPlan fault_plan;

  /// If > 0, a watchdog thread checks every interval whether the pool has
  /// pending jobs but executed no task since the previous check, and emits
  /// a diagnostic dump (dump_state()) when so.
  std::chrono::milliseconds watchdog_interval{0};
  /// Where watchdog dumps go; nullptr = std::cerr.
  // lint: allow(std-function): user-facing sink set once per pool, invoked
  // off the hot path by the watchdog thread only; copyability is part of
  // the PoolOptions contract, so InlineFn (move-only) does not fit.
  std::function<void(const std::string&)> watchdog_sink;
};

struct PoolStats {
  /// Failed-or-successful steal *rounds* (one multi-probe sweep each).
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t tasks_executed = 0;

  // Task-slab allocator health (see task_pool.h).
  std::uint64_t task_slab_blocks = 0;  ///< blocks carved across all pools
  std::uint64_t task_remote_frees = 0; ///< cross-thread releases (reclaim path)

  // Fault-tolerance counters.
  std::uint64_t tasks_cancelled = 0;  ///< tasks skipped: their job was cancelled
  std::uint64_t faults_injected = 0;  ///< task failures injected by the plan
  std::uint64_t jobs_failed = 0;      ///< jobs ended Failed
  std::uint64_t jobs_deadline_expired = 0;
  std::uint64_t jobs_shed = 0;        ///< queued jobs dropped by shed-oldest
                                      ///< or a shutdown drain (outcome kShed)
  std::uint64_t jobs_rejected = 0;    ///< submissions rejected: reject-newest
                                      ///< or a closed queue (outcome
                                      ///< kRejected)
  std::uint64_t watchdog_dumps = 0;
};

/// Per-job submission parameters.
struct SubmitOptions {
  double weight = 1.0;
  /// If set, the job must finish within this duration of submission;
  /// afterwards it is cancelled and recorded as DeadlineExpired.
  /// Enforcement is cooperative: checked before every task of the job
  /// executes (long task bodies should poll TaskContext::cancelled()).
  std::optional<Clock::duration> deadline;
};

class ThreadPool;

namespace detail {

/// Per-worker counters, padded to a destructive-interference boundary:
/// each worker bumps its own counters on every task, and the padding makes
/// the no-false-sharing property structural rather than allocator luck.
/// Single-writer: only the owning worker writes (plain relaxed load+store,
/// no RMW — a lock-prefixed add per task is measurable at fine grain);
/// stats()/dump_state() read cross-thread with relaxed loads.
struct alignas(kDestructiveInterference) WorkerCounters {
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> successful_steals{0};
  std::atomic<std::uint64_t> admissions{0};
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> tasks_cancelled{0};

  /// Owner-only increment: safe without an RMW because each counter has
  /// exactly one writer.
  // order: relaxed load+store — single-writer counter (only the owning
  // worker writes); readers (stats/dump_state) tolerate staleness, and no
  // payload is published through these values.
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
};

/// Everything one worker owns.  A ThreadPool implementation detail at
/// namespace scope only so TaskContext can carry a pointer to it (the hot
/// spawn path must not re-chase workers_[i] per task).
struct alignas(kDestructiveInterference) WorkerState {
  ChaseLevDeque<Task*> deque;
  TaskPool task_pool;  ///< slab for tasks spawned on this worker
  sim::Rng rng{1};
  unsigned fail_count = 0;
  WorkerCounters counters;
  std::thread thread;
};

}  // namespace detail

/// Handed to every executing task; the gateway for spawning subtasks.
class TaskContext {
 public:
  /// Spawns a subtask of the current job onto this worker's deque.
  void spawn(TaskFn fn);

  /// Spawns a subtask that signals `wg` when it finishes.
  void spawn(TaskFn fn, WaitGroup& wg);

  /// Help-first join: executes queued/stolen tasks until wg.idle().
  /// Never blocks the worker thread.  If the surrounding job is cancelled
  /// during the join, wait_help still drains the WaitGroup completely
  /// (skipped subtasks signal it too — see Task::wg) and only then throws
  /// JobCancelledError, so no in-flight sibling can touch the WaitGroup's
  /// stack frame after the unwind; the pool catches the exception at the
  /// task boundary.
  void wait_help(WaitGroup& wg);

  /// True once this task's job has been cancelled (failure, deadline, or
  /// shedding).  Long-running bodies should poll this and return early.
  bool cancelled() const { return job_->cancelled(); }

  /// Cooperative deadline enforcement for long task bodies.  The pool
  /// checks a job's deadline before each of its tasks *starts*; a job
  /// whose entire remaining work lives inside one long body would never be
  /// checked again, so such bodies call this between work quanta: it
  /// performs the DeadlineExpired cancellation if the deadline has passed
  /// and returns true when the job is cancelled for any cause (the body
  /// should return early).
  bool poll_deadline();

  /// The job this task belongs to.
  Job& job() const { return *job_; }
  /// Index of the executing worker.
  unsigned worker_index() const { return worker_; }
  ThreadPool& pool() const { return *pool_; }

 private:
  friend class ThreadPool;
  TaskContext(ThreadPool* pool, detail::WorkerState* state, unsigned worker,
              Job* job)
      : pool_(pool), state_(state), worker_(worker), job_(job) {}

  ThreadPool* pool_;
  detail::WorkerState* state_;  // cached &pool_->workers_[worker_]
  unsigned worker_;
  Job* job_;
};

class ThreadPool {
 public:
  explicit ThreadPool(const PoolOptions& options);
  /// Drains all submitted jobs, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a job whose root task is `root`; returns immediately unless
  /// the admission queue is bounded with the kBlock policy and full.
  /// The submission time recorded for flow accounting is *now*.
  ///
  /// Under a bounded queue the returned handle may already be terminal:
  /// outcome() == kRejected when this submission was refused
  /// (reject-newest) — and a *different* job's handle becomes kShed when
  /// shed-oldest evicts it.  A dropped job whose deadline had already
  /// passed in the queue is recorded as kDeadlineExpired instead.  Callers
  /// that care must check the handle, not assume eventual execution.
  ///
  /// Calling submit() after shutdown() fails loudly: it throws
  /// std::logic_error and the job is not enqueued.  (A submit racing
  /// shutdown() either throws, runs to completion, or — if it slips into
  /// the closing queue — is recorded as Rejected or Shed; it is never
  /// silently dropped.)
  ///
  /// submit() must not be called from inside a task body of this pool when
  /// the admission queue is bounded with BackpressurePolicy::kBlock: a
  /// worker blocking on a full queue cannot drain it, and with every
  /// worker blocked the pool deadlocks.  Such calls throw std::logic_error
  /// deterministically (full queue or not); use TaskContext::spawn or a
  /// non-blocking policy instead.
  JobHandle submit(TaskFn root, const SubmitOptions& options);
  JobHandle submit(TaskFn root, double weight = 1.0);

  /// Blocks until every job submitted so far has reached a terminal
  /// outcome (completed, failed, deadline-expired, or shed).
  void wait_all();

  /// Stops accepting jobs, drains, and joins workers (idempotent; also run
  /// by the destructor).
  void shutdown();

  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }
  /// Note: Job::wait() returns just before the job lands in the recorder;
  /// wait_all() is the barrier after which the recorder covers every
  /// submitted job.
  FlowRecorder& recorder() { return recorder_; }
  /// Aggregated from ONE pass over the workers (each counter read exactly
  /// once per call); counters are updated with relaxed atomics, so a
  /// snapshot taken while the pool is busy may be slightly stale but is
  /// race-free and internally consistent — stats() and dump_state() never
  /// mix two reads of the same counter.
  PoolStats stats() const;

  /// One coherent snapshot of the admission queue's own books (taken in a
  /// single critical section; see AdmissionQueue::Stats) — the service
  /// layer's shed cross-checks compare these against recorder outcomes.
  AdmissionQueue::Stats admission_stats() const { return admission_.stats(); }

  /// Human-readable snapshot of pool state: job counters, admission-queue
  /// depth, per-worker deque depths and counters, and the first unfinished
  /// jobs.  This is what the watchdog emits on a stall.
  std::string dump_state() const;

 private:
  friend class TaskContext;
  using WorkerState = detail::WorkerState;

  /// One worker's counters read in a single pass (each atomic loaded
  /// exactly once); the unit both stats() and dump_state() are built from.
  struct WorkerSnapshot {
    std::size_t deque_hint = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t successful_steals = 0;
    std::uint64_t admissions = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_cancelled = 0;
    std::uint64_t slab_blocks = 0;
    std::uint64_t remote_frees = 0;
  };
  std::vector<WorkerSnapshot> snapshot_workers() const;

  void worker_main(unsigned index);
  void watchdog_main(std::chrono::milliseconds interval);
  /// One acquire-execute round; returns true if a task was executed.
  /// `helping` suppresses admission (a helper joining a WaitGroup must not
  /// start brand-new jobs mid-join: it only drains existing work).
  /// `w` is `*workers_[index]`, threaded through to keep the per-task path
  /// free of repeated indirection.
  bool try_run_one(unsigned index, WorkerState& w, bool helping);
  void execute(Task* task, unsigned worker, WorkerState& w);
  /// One steal round: up to kStealProbes victims, random start, rotating.
  Task* try_steal(unsigned thief, WorkerState& me);
  /// Terminates a job whose root task never ran: marks it kRejected (the
  /// submission was refused) or kShed (a queued job was dropped) — or
  /// kDeadlineExpired when its deadline already passed — records it, and
  /// releases the task.  Runs on non-worker threads (submit / shutdown).
  void terminate_unadmitted(Task* task, bool rejected);
  /// Drains one pending count; on the job's last task records it in the
  /// given recorder shard and, only when this was the last outstanding
  /// job, notifies done_cv_ (completions of non-final jobs touch no lock).
  void finish_job(Job* job, unsigned recorder_shard);
  /// Recorder shard for non-worker threads (submit, shutdown, watchdog).
  unsigned external_shard() const { return workers(); }

  std::vector<std::unique_ptr<WorkerState>> workers_;
  AdmissionQueue admission_;
  FlowRecorder recorder_;
  mutable Mutex external_mu_;  // stats()/dump_state() are const readers
  /// Slab for root tasks built by submit(); external_mu_ serializes the
  /// owner-side allocate() between non-worker callers (submission is
  /// job-granularity, far off the per-task hot path).  Workers *release*
  /// into it without the lock, by design: TaskPool::release routes
  /// cross-thread frees through the pool's lock-free reclaim stack (see
  /// task_pool.h), which never touches the mutex-guarded freelist.
  TaskPool external_pool_ PJSCHED_GUARDED_BY(external_mu_);
  const unsigned steal_k_;
  const bool admit_by_weight_;
  std::unique_ptr<FaultInjector> injector_;  // null when the plan is empty

  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> jobs_deadline_expired_{0};
  std::atomic<std::uint64_t> jobs_shed_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> watchdog_dumps_{0};
  // lint: allow(wait-lock): pairs with idle_cv_ only; guards no data — the
  // idle-backoff predicate reads atomics, the lock just closes the
  // check-then-block window.
  Mutex idle_mu_;
  CondVar idle_cv_;     ///< idle-backoff wakeup; notified by submit()
  mutable Mutex done_mu_;  // dump_state() is const and snapshots jobs
  CondVar done_cv_;
  /// Keeps every submitted job alive until shutdown even if the caller
  /// drops its handle (tasks hold raw Job pointers).
  std::vector<JobHandle> live_jobs_ PJSCHED_GUARDED_BY(done_mu_);

  // lint: allow(std-function): cold-path copy of PoolOptions::watchdog_sink.
  std::function<void(const std::string&)> watchdog_sink_;
  Mutex watchdog_mu_;
  CondVar watchdog_cv_;
  bool watchdog_stop_ PJSCHED_GUARDED_BY(watchdog_mu_) = false;
  std::thread watchdog_;
};

/// Parallel-for over [begin, end): splits into chunks of at most `grain`
/// consecutive indices, spawns one subtask per chunk, and help-joins.
/// `body` receives (chunk_begin, chunk_end).  Must be called from inside a
/// task (uses ctx.spawn / ctx.wait_help).
template <typename Body>
void parallel_for(TaskContext& ctx, std::size_t begin, std::size_t end,
                  std::size_t grain, Body body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  WaitGroup wg;
  // Keep the last chunk for ourselves; spawn the rest.
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain;
    ctx.spawn([lo, hi, &body](TaskContext&) { body(lo, hi); }, wg);
  }
  body(begin + (chunks - 1) * grain, end);
  ctx.wait_help(wg);
}

}  // namespace pjsched::runtime
