// The TBB-style multiprogrammed work-stealing thread pool (paper Section 6:
// "We extended TBB to schedule multiple jobs arriving online by adding a
// global FIFO queue for admitting jobs and we implement both admit-first
// and steal-k-first").
//
// Architecture:
//   * one worker thread per configured slot, each owning a Chase–Lev deque;
//   * a global FIFO AdmissionQueue of job root tasks;
//   * workers run: local pop -> (policy-gated) admit -> random steal;
//     under steal-k-first a worker admits only after k consecutive failed
//     steal attempts, under admit-first (k = 0) it checks the global queue
//     as soon as its deque is empty;
//   * tasks spawn subtasks onto their worker's deque (TaskContext::spawn)
//     and join with help-first waiting (TaskContext::wait_help), which
//     executes other tasks instead of blocking the thread;
//   * job flow times land in a FlowRecorder.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/admission_queue.h"
#include "src/runtime/chase_lev_deque.h"
#include "src/runtime/flow_recorder.h"
#include "src/runtime/job.h"
#include "src/sim/rng.h"

namespace pjsched::runtime {

struct PoolOptions {
  unsigned workers = std::thread::hardware_concurrency();
  /// Failed steal attempts before a worker may admit from the global queue
  /// (0 = admit-first; the paper's empirical choice is 16).
  unsigned steal_k = 0;
  /// Extension: admit the heaviest queued job instead of the oldest
  /// (mirrors the simulator's "-bwf" work-stealing variants).
  bool admit_by_weight = false;
  std::uint64_t seed = 1;
};

struct PoolStats {
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t tasks_executed = 0;
};

class ThreadPool;

/// Handed to every executing task; the gateway for spawning subtasks.
class TaskContext {
 public:
  /// Spawns a subtask of the current job onto this worker's deque.
  void spawn(TaskFn fn);

  /// Spawns a subtask that signals `wg` when it finishes.
  void spawn(TaskFn fn, WaitGroup& wg);

  /// Help-first join: executes queued/stolen tasks until wg.idle().
  /// Never blocks the worker thread.
  void wait_help(WaitGroup& wg);

  /// The job this task belongs to.
  Job& job() const { return *job_; }
  /// Index of the executing worker.
  unsigned worker_index() const { return worker_; }
  ThreadPool& pool() const { return *pool_; }

 private:
  friend class ThreadPool;
  TaskContext(ThreadPool* pool, unsigned worker, Job* job)
      : pool_(pool), worker_(worker), job_(job) {}

  ThreadPool* pool_;
  unsigned worker_;
  Job* job_;
};

class ThreadPool {
 public:
  explicit ThreadPool(const PoolOptions& options);
  /// Drains all submitted jobs, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a job whose root task is `root`; returns immediately.
  /// The submission time recorded for flow accounting is *now*.
  JobHandle submit(TaskFn root, double weight = 1.0);

  /// Blocks until every job submitted so far has completed.
  void wait_all();

  /// Stops accepting jobs, drains, and joins workers (idempotent; also run
  /// by the destructor).
  void shutdown();

  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }
  FlowRecorder& recorder() { return recorder_; }
  /// Aggregated across workers; safe to read when the pool is quiescent.
  PoolStats stats() const;

 private:
  friend class TaskContext;

  struct WorkerState {
    ChaseLevDeque<Task*> deque;
    sim::Rng rng{1};
    unsigned fail_count = 0;
    PoolStats stats;
    std::thread thread;
  };

  void worker_main(unsigned index);
  /// One acquire-execute round; returns true if a task was executed.
  /// `helping` suppresses admission (a helper joining a WaitGroup must not
  /// start brand-new jobs mid-join: it only drains existing work).
  bool try_run_one(unsigned index, bool helping);
  void execute(Task* task, unsigned worker);
  Task* try_steal(unsigned thief);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  AdmissionQueue admission_;
  FlowRecorder recorder_;
  const unsigned steal_k_;
  const bool admit_by_weight_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  /// Keeps every submitted job alive until shutdown even if the caller
  /// drops its handle (tasks hold raw Job pointers).
  std::vector<JobHandle> live_jobs_;
};

/// Parallel-for over [begin, end): splits into chunks of at most `grain`
/// consecutive indices, spawns one subtask per chunk, and help-joins.
/// `body` receives (chunk_begin, chunk_end).  Must be called from inside a
/// task (uses ctx.spawn / ctx.wait_help).
template <typename Body>
void parallel_for(TaskContext& ctx, std::size_t begin, std::size_t end,
                  std::size_t grain, Body body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  WaitGroup wg;
  // Keep the last chunk for ourselves; spawn the rest.
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain;
    ctx.spawn([lo, hi, &body](TaskContext&) { body(lo, hi); }, wg);
  }
  body(begin + (chunks - 1) * grain, end);
  ctx.wait_help(wg);
}

}  // namespace pjsched::runtime
