// Parallel multi-trial runner: core::run_trials fanned out across trial
// seeds on the in-repo work-stealing ThreadPool (the runtime dogfooding its
// own scheduler).  Each trial is an independent pure function of
// (dist, cfg, t) — see core::run_one_trial — whose result lands in a
// pre-sized per-trial slot, and the merge runs in trial-index order, so the
// outcome is bit-identical to the sequential core::run_trials no matter how
// the pool interleaves the trials.
//
// Lives in pjsched_runtime (not pjsched) because the dependency points
// runtime -> core; callers that want parallel trials link pjsched_runtime.
#pragma once

#include <cstddef>

#include "src/core/multi_trial.h"

namespace pjsched::runtime {

struct ParallelTrialOptions {
  /// Pool worker threads; 0 = hardware concurrency.  Always capped at the
  /// trial count (extra workers would only spin on empty deques).
  unsigned threads = 0;
  /// Trials per spawned subtask; 1 (the default) exposes maximal
  /// parallelism, larger grains amortize spawn overhead for cheap trials.
  std::size_t grain = 1;
};

/// Runs cfg.trials trials of (dist, cfg) on a thread pool and returns the
/// same TrialOutcome core::run_trials(dist, cfg) returns, bit for bit.
/// Throws std::invalid_argument for zero trials and std::runtime_error if
/// any trial throws (the pool contains the failure; the first error message
/// is propagated).
core::TrialOutcome run_trials_parallel(const workload::WorkDistribution& dist,
                                       const core::TrialConfig& cfg,
                                       const ParallelTrialOptions& options = {});

}  // namespace pjsched::runtime
