// Executes a dag::Dag job on the real threaded runtime: the bridge between
// the simulator's job model and the thread pool, mirroring how the paper's
// TBB implementation executes the same benchmark jobs the simulated OPT is
// computed on.
//
// Each DAG node becomes one task; when a task finishes it resolves its
// successors' dependence counters and spawns those that became ready onto
// its worker's deque — the dynamic-unfolding contract of Section 2,
// realized with atomics instead of the simulator's ReadyTracker.
#pragma once

#include <cstdint>
#include <functional>

#include "src/dag/dag.h"
#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {

/// Called once per node when it executes; receives the node id and its
/// processing time in work units.  The default body (see spin_for_units)
/// burns CPU proportional to the work.
// lint: allow(std-function): one copy per DAG *job*, shared by every node
// task through the DagRun — not a per-task callable; copyability is
// required (each node task captures the shared_ptr'd run, and user bodies
// are std::function-shaped lambdas), so InlineFn does not fit.
using NodeBody = std::function<void(dag::NodeId, dag::Work)>;

/// Busy-spins for roughly `units * ns_per_unit` nanoseconds of CPU time —
/// the CPU-bound stand-in for real node work.
void spin_for_units(dag::Work units, double ns_per_unit);

/// Submits `graph` as one job (the run keeps its own copy of the DAG, so
/// temporaries are fine).  Returns the pool's job handle (flow time lands
/// in the pool's recorder).
JobHandle submit_dag(ThreadPool& pool, const dag::Dag& graph, NodeBody body,
                     double weight = 1.0);

/// Convenience: submit with a spinning body of `ns_per_unit` per work unit.
JobHandle submit_dag_spinning(ThreadPool& pool, const dag::Dag& graph,
                              double ns_per_unit, double weight = 1.0);

}  // namespace pjsched::runtime
