#include "src/runtime/flow_recorder.h"

#include <algorithm>

namespace pjsched::runtime {

void FlowRecorder::record(const Job& job) {
  record(job.flow_seconds(), job.weight(), job.outcome());
}

void FlowRecorder::record(double flow_seconds, double weight,
                          JobOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case JobOutcome::kRunning:  // defensive: treat as completed
    case JobOutcome::kCompleted:
      ++counts_.completed;
      flows_.push_back(flow_seconds);
      weights_.push_back(weight);
      break;
    case JobOutcome::kFailed:
      ++counts_.failed;
      break;
    case JobOutcome::kDeadlineExpired:
      ++counts_.deadline_expired;
      break;
    case JobOutcome::kShed:
      ++counts_.shed;
      break;
    case JobOutcome::kRejected:
      ++counts_.rejected;
      break;
  }
}

std::size_t FlowRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(counts_.total());
}

FlowRecorder::OutcomeCounts FlowRecorder::outcome_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::vector<double> FlowRecorder::flows_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_;
}

double FlowRecorder::max_flow_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (double f : flows_) best = std::max(best, f);
  return best;
}

double FlowRecorder::max_weighted_flow_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (std::size_t i = 0; i < flows_.size(); ++i)
    best = std::max(best, flows_[i] * weights_[i]);
  return best;
}

metrics::Summary FlowRecorder::summary() const {
  return metrics::summarize(flows_seconds());
}

}  // namespace pjsched::runtime
