#include "src/runtime/flow_recorder.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace pjsched::runtime {

FlowRecorder::FlowRecorder(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

std::size_t FlowRecorder::thread_shard() const {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         shards_.size();
}

void FlowRecorder::record(const Job& job) { record(job, thread_shard()); }

void FlowRecorder::record(const Job& job, std::size_t shard) {
  record(job.flow_seconds(), job.weight(), job.outcome(), shard);
}

void FlowRecorder::record(double flow_seconds, double weight,
                          JobOutcome outcome) {
  record(flow_seconds, weight, outcome, thread_shard());
}

void FlowRecorder::record(double flow_seconds, double weight,
                          JobOutcome outcome, std::size_t shard) {
  Shard& s = shards_[shard % shards_.size()];
  MutexLock lock(s.mu);
  switch (outcome) {
    case JobOutcome::kRunning:  // defensive: treat as completed
    case JobOutcome::kCompleted:
      ++s.counts.completed;
      s.flows.push_back(flow_seconds);
      s.weights.push_back(weight);
      break;
    case JobOutcome::kFailed:
      ++s.counts.failed;
      break;
    case JobOutcome::kDeadlineExpired:
      ++s.counts.deadline_expired;
      break;
    case JobOutcome::kShed:
      ++s.counts.shed;
      break;
    case JobOutcome::kRejected:
      ++s.counts.rejected;
      break;
  }
}

std::size_t FlowRecorder::count() const {
  return static_cast<std::size_t>(outcome_counts().total());
}

FlowRecorder::OutcomeCounts FlowRecorder::outcome_counts() const {
  OutcomeCounts total;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    total.completed += s.counts.completed;
    total.failed += s.counts.failed;
    total.deadline_expired += s.counts.deadline_expired;
    total.shed += s.counts.shed;
    total.rejected += s.counts.rejected;
  }
  return total;
}

std::vector<double> FlowRecorder::flows_seconds() const {
  std::vector<double> merged;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    merged.insert(merged.end(), s.flows.begin(), s.flows.end());
  }
  return merged;
}

double FlowRecorder::max_flow_seconds() const {
  double best = 0.0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    for (double f : s.flows) best = std::max(best, f);
  }
  return best;
}

double FlowRecorder::max_weighted_flow_seconds() const {
  double best = 0.0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    for (std::size_t i = 0; i < s.flows.size(); ++i)
      best = std::max(best, s.flows[i] * s.weights[i]);
  }
  return best;
}

metrics::Summary FlowRecorder::summary() const {
  return metrics::summarize(flows_seconds());
}

}  // namespace pjsched::runtime
