#include "src/runtime/flow_recorder.h"

#include <algorithm>

namespace pjsched::runtime {

void FlowRecorder::record(const Job& job) {
  const double flow = job.flow_seconds();
  std::lock_guard<std::mutex> lock(mu_);
  flows_.push_back(flow);
  weights_.push_back(job.weight());
}

std::size_t FlowRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

std::vector<double> FlowRecorder::flows_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_;
}

double FlowRecorder::max_flow_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (double f : flows_) best = std::max(best, f);
  return best;
}

double FlowRecorder::max_weighted_flow_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double best = 0.0;
  for (std::size_t i = 0; i < flows_.size(); ++i)
    best = std::max(best, flows_[i] * weights_[i]);
  return best;
}

metrics::Summary FlowRecorder::summary() const {
  return metrics::summarize(flows_seconds());
}

}  // namespace pjsched::runtime
