#include "src/runtime/fault_injection.h"

#include <algorithm>

#include "src/sim/rng.h"

namespace pjsched::runtime {

FaultInjector::FaultInjector(FaultPlan plan, unsigned workers)
    : plan_(std::move(plan)) {
  if (plan_.task_failure_probability < 0.0 ||
      plan_.task_failure_probability > 1.0)
    throw std::invalid_argument(
        "FaultInjector: task_failure_probability must be in [0, 1]");
  stalls_.assign(workers, std::chrono::microseconds{0});
  for (const FaultPlan::WorkerStall& ws : plan_.worker_stalls) {
    if (ws.worker >= workers)
      throw std::invalid_argument("FaultInjector: stall for worker " +
                                  std::to_string(ws.worker) + " but pool has " +
                                  std::to_string(workers) + " workers");
    stalls_[ws.worker] = std::max(stalls_[ws.worker], ws.stall);
  }
  std::sort(plan_.fail_task_indices.begin(), plan_.fail_task_indices.end());
}

bool FaultInjector::would_fail(std::uint64_t task_index) const {
  if (std::binary_search(plan_.fail_task_indices.begin(),
                         plan_.fail_task_indices.end(), task_index))
    return true;
  if (plan_.task_failure_probability <= 0.0) return false;
  // Counter-based draw: hash (seed, index) through SplitMix64 into a
  // uniform double.  Stateless, so the decision for index i never depends
  // on which thread asked or in what order.
  std::uint64_t state = plan_.seed ^ (task_index * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t bits = sim::splitmix64(state);
  const double u =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  return u < plan_.task_failure_probability;
}

std::optional<std::uint64_t> FaultInjector::next_task_fault() {
  // order: relaxed — a pure ticket counter: uniqueness of the claimed
  // index is all the determinism contract needs, and atomicity alone
  // provides it; no data is published through the index.
  const std::uint64_t index =
      next_index_.fetch_add(1, std::memory_order_relaxed);
  if (!would_fail(index)) return std::nullopt;
  // order: relaxed — diagnostic tally (faults_injected()).
  faults_.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace pjsched::runtime
