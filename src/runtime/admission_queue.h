// The global FIFO admission queue the paper adds to the work-stealing
// runtime for multiprogrammed scheduling (Section 4): newly released jobs
// are appended at the tail; workers admit from the head in FIFO order,
// gated by the admission policy (admit-first / steal-k-first) in the worker
// loop.  Mutex-protected: admissions happen at job granularity, far too
// rarely for the lock to matter, and FIFO order must be exact.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>

#include "src/runtime/job.h"

namespace pjsched::runtime {

class AdmissionQueue {
 public:
  AdmissionQueue() = default;
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Appends a job's root task at the tail.
  void push(Task* task);

  /// Pops the head task, or returns nullptr when empty.
  Task* try_pop();

  /// Pops the task whose job has the largest weight (ties: oldest), or
  /// returns nullptr when empty — the weighted-admission extension.
  Task* try_pop_heaviest();

  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<Task*> queue_;
};

}  // namespace pjsched::runtime
