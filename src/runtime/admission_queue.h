// The global FIFO admission queue the paper adds to the work-stealing
// runtime for multiprogrammed scheduling (Section 4): newly released jobs
// are appended at the tail; workers admit from the head in FIFO order,
// gated by the admission policy (admit-first / steal-k-first) in the worker
// loop.  Mutex-protected: admissions happen at job granularity, far too
// rarely for the lock to matter, and FIFO order must be exact.
//
// The queue may be bounded (capacity > 0), in which case a full queue
// triggers the configured BackpressurePolicy instead of unbounded growth:
// overload then degrades gracefully (bounded memory, bounded queueing
// delay for admitted jobs) instead of OOMing — the ThreadPool records what
// was dropped.
#pragma once

#include <cstddef>
#include <deque>

#include "src/runtime/annotations.h"
#include "src/runtime/job.h"
#include "src/runtime/mutex.h"

namespace pjsched::runtime {

/// What a full bounded queue does with a new submission.
enum class BackpressurePolicy {
  kBlock,         ///< the submitter blocks until a worker admits a job
  kRejectNewest,  ///< the new job is rejected (recorded as Shed)
  kShedOldest,    ///< the oldest queued job is dropped to make room
};

inline const char* to_string(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kRejectNewest: return "reject-newest";
    case BackpressurePolicy::kShedOldest: return "shed-oldest";
  }
  return "?";
}

class AdmissionQueue {
 public:
  enum class PushResult {
    kAccepted,  ///< task enqueued (possibly after evicting the oldest)
    kRejected,  ///< task not enqueued; caller keeps ownership
  };

  /// Queue-level accounting, maintained under the queue's own lock so the
  /// books can never be observed torn: every counter in a stats() snapshot
  /// comes from one critical section (the same one-coherent-snapshot
  /// pattern PoolStats uses), so `accepted == popped + shed + depth` holds
  /// in every snapshot — the watchdog dump and the service layer's shed
  /// cross-checks rely on that exactness.
  struct Stats {
    std::uint64_t accepted = 0;         ///< pushes that enqueued
    std::uint64_t rejected_full = 0;    ///< reject-newest refusals
    std::uint64_t rejected_closed = 0;  ///< refused because close()d
    std::uint64_t shed = 0;             ///< evictions by shed-oldest
    std::uint64_t popped = 0;           ///< successful try_pop* calls
    std::size_t depth = 0;              ///< queued right now
    std::size_t peak_depth = 0;         ///< high-water mark of depth
  };

  /// capacity == 0 means unbounded (the policy is then never consulted).
  explicit AdmissionQueue(std::size_t capacity = 0,
                          BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {}
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Appends a job's root task at the tail, applying the backpressure
  /// policy when the queue is full:
  ///   * kBlock — waits until space frees up (or the queue is closed, in
  ///     which case kRejected is returned);
  ///   * kRejectNewest — returns kRejected, caller keeps ownership of
  ///     `task`;
  ///   * kShedOldest — evicts the head into *evicted (caller takes
  ///     ownership of the evicted task) and accepts `task`.
  /// `evicted` must be non-null; it is set to nullptr unless an eviction
  /// happened.
  PushResult push(Task* task, Task** evicted);

  /// Pops the head task, or returns nullptr when empty.
  Task* try_pop();

  /// Pops the task whose job has the largest weight (ties: oldest), or
  /// returns nullptr when empty — the weighted-admission extension.
  Task* try_pop_heaviest();

  /// Wakes all blocked pushers with kRejected and makes every future push
  /// (any policy) return kRejected — the shutdown barrier that guarantees
  /// a task can never slip into a queue nobody will drain.  Queued tasks
  /// stay poppable (shutdown drains them).
  void close();

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }

  /// One coherent snapshot of the accounting, taken in a single critical
  /// section (never torn: the shed counter and the depth it explains come
  /// from the same lock hold).
  Stats stats() const;

 private:
  bool full_locked() const PJSCHED_REQUIRES(mu_) {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable Mutex mu_;
  CondVar space_cv_;  ///< signalled on pop (space freed) and on close()
  bool closed_ PJSCHED_GUARDED_BY(mu_) = false;
  std::deque<Task*> queue_ PJSCHED_GUARDED_BY(mu_);
  Stats stats_ PJSCHED_GUARDED_BY(mu_);  ///< depth/peak updated inline
};

}  // namespace pjsched::runtime
