// Per-job flow-time accounting for the threaded runtime: submission and
// completion wall-clock timestamps, and summary statistics matching the
// quantities the paper's Figure 2 reports (max flow time; we add mean and
// weighted max).
//
// Every job lands here with its terminal outcome.  Flow-time statistics
// (max / weighted max / summary) cover *completed* jobs only — a failed,
// deadline-expired, shed, or rejected job has no meaningful flow time and
// must not contaminate the objective — but every outcome is counted and visible
// through outcome_counts(), so degraded runs are auditable.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/metrics/stats.h"
#include "src/runtime/job.h"

namespace pjsched::runtime {

class FlowRecorder {
 public:
  /// Per-terminal-outcome job counts.  `shed` and `rejected` mirror
  /// PoolStats::jobs_shed and PoolStats::jobs_rejected one-to-one.
  struct OutcomeCounts {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t shed = 0;      ///< queued jobs dropped (kShed)
    std::uint64_t rejected = 0;  ///< submissions refused (kRejected)

    std::uint64_t total() const {
      return completed + failed + deadline_expired + shed + rejected;
    }
  };

  /// Registers a finished job (thread-safe; called by workers).  The
  /// outcome is read from the job; only kCompleted jobs contribute to the
  /// flow statistics.
  void record(const Job& job);

  /// Testing/embedding hook: record a terminal outcome directly.
  void record(double flow_seconds, double weight, JobOutcome outcome);

  /// Jobs recorded so far, any outcome.
  std::size_t count() const;

  OutcomeCounts outcome_counts() const;

  /// Snapshot of completed jobs' flow times so far, in seconds.
  std::vector<double> flows_seconds() const;

  /// max_i F_i over completed jobs, seconds.
  double max_flow_seconds() const;
  /// max_i w_i F_i over completed jobs, seconds.
  double max_weighted_flow_seconds() const;
  /// Flow summary over completed jobs.
  metrics::Summary summary() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> flows_;    // completed jobs only
  std::vector<double> weights_;  // parallel to flows_
  OutcomeCounts counts_;
};

}  // namespace pjsched::runtime
