// Per-job flow-time accounting for the threaded runtime: submission and
// completion wall-clock timestamps, and summary statistics matching the
// quantities the paper's Figure 2 reports (max flow time; we add mean and
// weighted max).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/metrics/stats.h"
#include "src/runtime/job.h"

namespace pjsched::runtime {

class FlowRecorder {
 public:
  /// Registers a completed job's flow time (thread-safe; called by workers).
  void record(const Job& job);

  std::size_t count() const;

  /// Snapshot of all flow times so far, in seconds.
  std::vector<double> flows_seconds() const;

  /// max_i F_i over recorded jobs, seconds.
  double max_flow_seconds() const;
  /// max_i w_i F_i over recorded jobs, seconds.
  double max_weighted_flow_seconds() const;
  metrics::Summary summary() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> flows_;
  std::vector<double> weights_;
};

}  // namespace pjsched::runtime
