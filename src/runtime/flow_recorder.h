// Per-job flow-time accounting for the threaded runtime: submission and
// completion wall-clock timestamps, and summary statistics matching the
// quantities the paper's Figure 2 reports (max flow time; we add mean and
// weighted max).
//
// Every job lands here with its terminal outcome.  Flow-time statistics
// (max / weighted max / summary) cover *completed* jobs only — a failed,
// deadline-expired, shed, or rejected job has no meaningful flow time and
// must not contaminate the objective — but every outcome is counted and visible
// through outcome_counts(), so degraded runs are auditable.
//
// Sharded for the hot path: writes land in per-shard buffers (the
// ThreadPool gives each worker its own shard plus one for non-worker
// callers), each behind its own interference-padded mutex, so concurrent
// job completions on different workers never contend on a global lock.
// Readers merge the shards on demand — reads are report-time operations,
// writes are the per-job hot path, and the trade goes to the writer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/metrics/stats.h"
#include "src/runtime/annotations.h"
#include "src/runtime/interference.h"
#include "src/runtime/job.h"
#include "src/runtime/mutex.h"

namespace pjsched::runtime {

class FlowRecorder {
 public:
  /// Per-terminal-outcome job counts.  `shed` and `rejected` mirror
  /// PoolStats::jobs_shed and PoolStats::jobs_rejected one-to-one.
  struct OutcomeCounts {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t shed = 0;      ///< queued jobs dropped (kShed)
    std::uint64_t rejected = 0;  ///< submissions refused (kRejected)

    std::uint64_t total() const {
      return completed + failed + deadline_expired + shed + rejected;
    }
  };

  /// A recorder with `shards` independent write buffers.  Any shard index
  /// in [0, shards) may be written from any thread (each shard has its own
  /// lock); distinct threads writing distinct shards never contend.
  explicit FlowRecorder(std::size_t shards = 1);

  /// Registers a finished job (thread-safe; called by workers).  The
  /// outcome is read from the job; only kCompleted jobs contribute to the
  /// flow statistics.  The shard-less overloads hash the calling thread to
  /// a shard; the ThreadPool passes its worker index explicitly.
  void record(const Job& job);
  void record(const Job& job, std::size_t shard);

  /// Testing/embedding hook: record a terminal outcome directly.
  void record(double flow_seconds, double weight, JobOutcome outcome);
  void record(double flow_seconds, double weight, JobOutcome outcome,
              std::size_t shard);

  std::size_t shard_count() const { return shards_.size(); }

  /// Jobs recorded so far, any outcome (merged over shards).
  std::size_t count() const;

  OutcomeCounts outcome_counts() const;

  /// Snapshot of completed jobs' flow times so far, in seconds.  Merge
  /// order is shard-major and NOT submission order; the flow statistics
  /// below are order-independent.
  std::vector<double> flows_seconds() const;

  /// max_i F_i over completed jobs, seconds.
  double max_flow_seconds() const;
  /// max_i w_i F_i over completed jobs, seconds.
  double max_weighted_flow_seconds() const;
  /// Flow summary over completed jobs.
  metrics::Summary summary() const;

 private:
  struct alignas(kDestructiveInterference) Shard {
    mutable Mutex mu;
    std::vector<double> flows PJSCHED_GUARDED_BY(mu);    // completed only
    std::vector<double> weights PJSCHED_GUARDED_BY(mu);  // parallel to flows
    OutcomeCounts counts PJSCHED_GUARDED_BY(mu);
  };

  std::size_t thread_shard() const;

  std::vector<Shard> shards_;  // sized at construction, never resized
};

}  // namespace pjsched::runtime
