// Clang thread-safety annotation vocabulary for the runtime.
//
// These macros wrap Clang's capability-based thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so that lock
// discipline — which mutex guards which data, which functions require or
// acquire which lock — is stated in the type system and *proved at compile
// time* by `-Wthread-safety` (promoted to an error in the lint CI job's
// clang build).  Under GCC and other compilers every macro expands to
// nothing, so annotations are free where the analysis is unavailable.
//
// Vocabulary (see docs/static-analysis.md for the full convention):
//   * PJSCHED_CAPABILITY(x)        — a class is a lockable capability;
//   * PJSCHED_SCOPED_CAPABILITY    — an RAII object that holds a capability
//                                    for its lifetime (MutexLock);
//   * PJSCHED_GUARDED_BY(mu)       — a data member readable/writable only
//                                    while `mu` is held;
//   * PJSCHED_PT_GUARDED_BY(mu)    — the pointee (not the pointer) is
//                                    guarded;
//   * PJSCHED_REQUIRES(mu)         — the function must be called with `mu`
//                                    held (and does not release it);
//   * PJSCHED_ACQUIRE / PJSCHED_RELEASE — the function takes / drops the
//                                    capability;
//   * PJSCHED_TRY_ACQUIRE(ok, mu)  — conditional acquisition, held iff the
//                                    return value equals `ok`;
//   * PJSCHED_EXCLUDES(mu)         — the caller must NOT hold `mu`
//                                    (deadlock guard for re-entrancy);
//   * PJSCHED_NO_THREAD_SAFETY_ANALYSIS — escape hatch; every use must
//                                    carry a written rationale at the site.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PJSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef PJSCHED_THREAD_ANNOTATION
#define PJSCHED_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define PJSCHED_CAPABILITY(x) PJSCHED_THREAD_ANNOTATION(capability(x))
#define PJSCHED_SCOPED_CAPABILITY PJSCHED_THREAD_ANNOTATION(scoped_lockable)
#define PJSCHED_GUARDED_BY(x) PJSCHED_THREAD_ANNOTATION(guarded_by(x))
#define PJSCHED_PT_GUARDED_BY(x) PJSCHED_THREAD_ANNOTATION(pt_guarded_by(x))
#define PJSCHED_REQUIRES(...) \
  PJSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PJSCHED_ACQUIRE(...) \
  PJSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PJSCHED_RELEASE(...) \
  PJSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PJSCHED_TRY_ACQUIRE(...) \
  PJSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PJSCHED_EXCLUDES(...) \
  PJSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PJSCHED_RETURN_CAPABILITY(x) \
  PJSCHED_THREAD_ANNOTATION(lock_returned(x))
#define PJSCHED_NO_THREAD_SAFETY_ANALYSIS \
  PJSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)
