// Cache-line geometry for the runtime's concurrency-hot structures.
//
// `std::hardware_destructive_interference_size` is the standard's name for
// "pad to this so two threads' writes don't false-share"; GCC warns on
// direct uses because the value is ABI-relevant across translation units
// compiled with different -mtune flags.  All our uses are internal to this
// library (every TU sees the same flags), so we funnel the constant through
// one symbol here and silence the warning at its single naming site.
#pragma once

#include <cstddef>
#include <new>

namespace pjsched::runtime {

#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kDestructiveInterference =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kDestructiveInterference = 64;
#endif

}  // namespace pjsched::runtime
