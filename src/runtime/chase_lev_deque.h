// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005), in the
// C11-memory-model formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP
// 2013), with one deviation: the slot handoff between push() and steal()
// is an explicit release/acquire pair instead of relying solely on the
// paper's release fence, so ThreadSanitizer (which does not model
// standalone fences) sees the edge — see the comment in push().  This is
// the per-worker deque at the heart of the TBB-style runtime: the owner
// pushes and pops at the *bottom* with no synchronization in the common
// case; thieves steal from the *top* with a single CAS.
//
// Semantics:
//   * exactly one owner thread may call push()/pop();
//   * any number of thief threads may call steal() concurrently;
//   * elements are trivially-copyable-sized payloads (we store pointers).
//
// The circular buffer grows geometrically and never shrinks; retired
// buffers are kept alive until the deque is destroyed, which makes buffer
// reclamation trivially safe against racing thieves (a standard technique —
// memory overhead is bounded by 2x the high-water mark).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pjsched::runtime {

template <typename T>
class ChaseLevDeque {
  static_assert(sizeof(T) <= sizeof(void*) && std::is_trivially_copyable_v<T>,
                "ChaseLevDeque stores small trivially copyable payloads "
                "(use a pointer type)");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(1), bottom_(1) {  // start at 1 so top - 1 never underflows
    // order: relaxed — single-threaded construction; thieves first learn
    // of this deque through the pool's thread start, which synchronizes.
    buffer_.store(new Buffer(round_up_pow2(initial_capacity)),
                  std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    // order: relaxed — destruction requires external quiescence anyway.
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push onto the bottom.
  void push(T item) {
    // order: relaxed — bottom_ and buffer_ are owner-written; the owner
    // reads its own writes.  top_ is acquire to observe thieves' steals
    // before judging fullness (PPoPP'13 fig. 1).
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    // The slot store is release (not relaxed as in the PPoPP'13 paper): it
    // pairs with the acquire slot load in steal() to carry the *pointee's*
    // initialization to the thief.  The paper gets that edge from the
    // release fence below, which is equally correct under C11 but
    // invisible to ThreadSanitizer (TSan does not model standalone
    // fences); the explicit pair keeps TSan exact at no cost on x86 and
    // one stlr on ARM.
    buf->put(b, item, std::memory_order_release);
    // Publish the element before publishing the new bottom.
    // order: relaxed store under the release fence — the fence (kept from
    // the paper) orders the slot write before the bottom_ publication.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop from the bottom.  Returns false when empty.
  bool pop(T& out) {
    // order: relaxed owner reads/writes of bottom_/buffer_ — single
    // writer; the seq_cst fence below is the store-load barrier that
    // makes the bottom_ decrement visible to thieves before top_ is read
    // (the PPoPP'13 pop/steal mutual-exclusion argument).
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);  // order: as above
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // order: relaxed — ordered by the fence above, per the paper.
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore bottom.
      // order: relaxed — owner-only bookkeeping; nothing published.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      // order: seq_cst success — the CAS must totally order against the
      // thieves' top_ CAS; relaxed failure — losing means a thief took the
      // element, we only restore bottom_ (owner-only) and retreat.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;  // a thief won
      }
      // order: relaxed — owner-only bottom_ restore, as in the empty case.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Thieves: steal from the top.  Returns false when empty or when losing
  /// a race (callers treat both as a failed steal attempt).
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    // Acquire pairs with the release slot store in push() (and the release
    // buffer_ publication in grow()) — see the comment in push().
    out = buf->get(t, std::memory_order_acquire);
    // order: seq_cst success — totally ordered against the owner's pop CAS
    // and other thieves; relaxed failure — a lost race returns false and
    // publishes nothing (the caller counts it as a failed attempt).
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return false;  // lost the race to another thief or the owner
    return true;
  }

  /// Approximate size; only a hint (races with concurrent operations).
  std::size_t size_hint() const {
    // order: relaxed — explicitly a racy diagnostic hint; any
    // interleaving of the two loads yields an acceptable answer.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_hint() const { return size_hint() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    ~Buffer() { delete[] slots; }

    // order: relaxed defaults — owner-side accesses (pop, grow) need no
    // slot ordering; push/steal pass the explicit release/acquire pair.
    // lint: allow(implicit-order): the order is explicit — forwarded
    // verbatim from the caller's `mo` argument.
    T get(std::int64_t i,
          std::memory_order mo = std::memory_order_relaxed) const {
      return slots[static_cast<std::size_t>(i) & mask].load(mo);
    }
    // order: relaxed default — same owner-side contract as get() above.
    // lint: allow(implicit-order): order forwarded from `mo`.
    void put(std::int64_t i, T v,
             std::memory_order mo = std::memory_order_relaxed) {
      slots[static_cast<std::size_t>(i) & mask].store(v, mo);
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<T>* slots;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 8;
    while (p < v) p <<= 1;
    return p;
  }

  // Owner only; doubles the buffer, copying the live range [t, b).
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still be reading it
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_;
  alignas(64) std::atomic<std::int64_t> bottom_;
  alignas(64) std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
};

}  // namespace pjsched::runtime
