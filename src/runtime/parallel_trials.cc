#include "src/runtime/parallel_trials.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {

core::TrialOutcome run_trials_parallel(const workload::WorkDistribution& dist,
                                       const core::TrialConfig& cfg,
                                       const ParallelTrialOptions& options) {
  if (cfg.trials == 0)
    throw std::invalid_argument("run_trials_parallel: zero trials");

  core::FixedInstance fixed;
  const core::FixedInstance* fixed_ptr = nullptr;
  if (cfg.fixed_instance) {
    fixed = core::make_fixed_instance(dist, cfg);
    fixed_ptr = &fixed;
  }

  unsigned threads =
      options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, cfg.trials));
  const std::size_t grain = options.grain == 0 ? 1 : options.grain;

  // Every trial writes only its own slot; the merge below reads them in
  // index order after the join, so no two threads ever touch the same
  // element and the fold order matches the sequential runner's.
  std::vector<core::TrialPoint> points(cfg.trials);

  PoolOptions pool_opt;
  pool_opt.workers = threads;
  ThreadPool pool(pool_opt);
  JobHandle handle = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, cfg.trials, grain,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t t = lo; t < hi; ++t)
                     points[t] = core::run_one_trial(dist, cfg, t, fixed_ptr);
                 });
  });
  pool.wait_all();
  if (handle->outcome() != JobOutcome::kCompleted)
    throw std::runtime_error("run_trials_parallel: trial failed: " +
                             handle->error());

  return core::summarize_trials(points);
}

}  // namespace pjsched::runtime
