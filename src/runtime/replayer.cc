#include "src/runtime/replayer.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/runtime/dag_executor.h"

namespace pjsched::runtime {

ReplayReport replay_instance(ThreadPool& pool, const core::Instance& instance,
                             const ReplayOptions& options) {
  instance.validate();
  if (!(options.ns_per_unit > 0.0))
    throw std::invalid_argument("replay_instance: ns_per_unit <= 0");
  if (!(options.arrival_scale > 0.0))
    throw std::invalid_argument("replay_instance: arrival_scale <= 0");

  const auto start = Clock::now();
  for (core::JobId j : instance.arrival_order()) {
    const core::JobSpec& job = instance.jobs[j];
    const auto offset = std::chrono::nanoseconds(static_cast<std::int64_t>(
        job.arrival * options.ns_per_unit * options.arrival_scale));
    std::this_thread::sleep_until(start + offset);
    submit_dag_spinning(pool, job.graph, options.ns_per_unit, job.weight);
  }
  pool.wait_all();
  const auto end = Clock::now();

  ReplayReport report;
  report.flow_seconds = pool.recorder().summary();
  report.max_weighted_flow_seconds =
      pool.recorder().max_weighted_flow_seconds();
  report.outcomes = pool.recorder().outcome_counts();
  report.pool_stats = pool.stats();
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace pjsched::runtime
