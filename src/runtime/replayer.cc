#include "src/runtime/replayer.h"

#include <chrono>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>

#include "src/runtime/dag_executor.h"
#include "src/workload/instance_io.h"

namespace pjsched::runtime {

core::Instance load_replay_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw ReplayFileError(ReplayFileError::Kind::kIo, path, "cannot open");
  core::Instance inst;
  try {
    inst = workload::read_instance(in);
  } catch (const std::invalid_argument& e) {
    // A parse failure at EOF is a short read: the file ended inside (or
    // just before) a record.  A failure with input still unread means the
    // content itself is wrong.
    if (in.eof())
      throw ReplayFileError(ReplayFileError::Kind::kTruncated, path,
                            std::string(e.what()) + " (file ended early)");
    throw ReplayFileError(ReplayFileError::Kind::kCorrupt, path, e.what());
  }
  // Anything but comments/whitespace after the trailer means the file is
  // not what write_instance produced — refuse it rather than ignore it.
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    throw ReplayFileError(ReplayFileError::Kind::kCorrupt, path,
                          "trailing garbage after 'endinstance': '" + tok +
                              "'");
  }
  return inst;
}

ReplayReport replay_instance(ThreadPool& pool, const core::Instance& instance,
                             const ReplayOptions& options) {
  instance.validate();
  if (!(options.ns_per_unit > 0.0))
    throw std::invalid_argument("replay_instance: ns_per_unit <= 0");
  if (!(options.arrival_scale > 0.0))
    throw std::invalid_argument("replay_instance: arrival_scale <= 0");

  const auto start = Clock::now();
  for (core::JobId j : instance.arrival_order()) {
    const core::JobSpec& job = instance.jobs[j];
    const auto offset = std::chrono::nanoseconds(static_cast<std::int64_t>(
        job.arrival * options.ns_per_unit * options.arrival_scale));
    std::this_thread::sleep_until(start + offset);
    submit_dag_spinning(pool, job.graph, options.ns_per_unit, job.weight);
  }
  pool.wait_all();
  const auto end = Clock::now();

  ReplayReport report;
  report.flow_seconds = pool.recorder().summary();
  report.max_weighted_flow_seconds =
      pool.recorder().max_weighted_flow_seconds();
  report.outcomes = pool.recorder().outcome_counts();
  report.pool_stats = pool.stats();
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace pjsched::runtime
