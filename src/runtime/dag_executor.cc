#include "src/runtime/dag_executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

namespace pjsched::runtime {

void spin_for_units(dag::Work units, double ns_per_unit) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(
          static_cast<std::int64_t>(static_cast<double>(units) * ns_per_unit));
  while (std::chrono::steady_clock::now() < deadline) {
    // Keep the core busy; prevent the loop from being optimized away.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
}

namespace {

// Shared per-job execution state: dependence counters plus the body.
// Owned by shared_ptr captured in every node task, so it lives until the
// last task finishes regardless of completion order.
struct DagRun {
  DagRun(dag::Dag g, NodeBody b)
      : graph(std::move(g)), body(std::move(b)), pending(graph.node_count()) {
    // order: relaxed — single-threaded initialization; the DagRun is
    // published to workers via submit()'s queue, which carries the edge.
    for (std::size_t v = 0; v < graph.node_count(); ++v)
      pending[v].store(static_cast<std::uint32_t>(graph.in_degree(
                           static_cast<dag::NodeId>(v))),
                       std::memory_order_relaxed);
  }

  const dag::Dag graph;  // owned: the run may outlive the caller's copy
  NodeBody body;
  std::vector<std::atomic<std::uint32_t>> pending;
};

void run_node(TaskContext& ctx, const std::shared_ptr<DagRun>& run,
              dag::NodeId v) {
  // Cooperative cancellation: once the job is cancelled (failure, deadline,
  // shedding), remaining nodes are skipped rather than executed.  Successor
  // resolution is skipped too — the job can never complete, and the pool
  // drains the already-spawned tasks the same way.
  if (ctx.cancelled()) return;
  run->body(v, run->graph.work_of(v));
  for (dag::NodeId w : run->graph.successors(v)) {
    // order: acq_rel — release publishes this node's effects to the
    // successor's spawner; acquire makes the last-resolving predecessor
    // see every other predecessor's effects before the successor runs.
    if (run->pending[w].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ctx.spawn([run, w](TaskContext& inner) { run_node(inner, run, w); });
    }
  }
}

}  // namespace

JobHandle submit_dag(ThreadPool& pool, const dag::Dag& graph, NodeBody body,
                     double weight) {
  if (!graph.sealed())
    throw std::invalid_argument("submit_dag: DAG must be sealed");
  auto run = std::make_shared<DagRun>(graph, std::move(body));
  return pool.submit(
      [run](TaskContext& ctx) {
        // Spawn every source; the spawning task itself is the job root.
        for (dag::NodeId s : run->graph.sources())
          ctx.spawn([run, s](TaskContext& inner) { run_node(inner, run, s); });
      },
      weight);
}

JobHandle submit_dag_spinning(ThreadPool& pool, const dag::Dag& graph,
                              double ns_per_unit, double weight) {
  return submit_dag(
      pool, graph,
      [ns_per_unit](dag::NodeId, dag::Work units) {
        spin_for_units(units, ns_per_unit);
      },
      weight);
}

}  // namespace pjsched::runtime
