#include "src/workload/arrivals.h"

#include <stdexcept>

namespace pjsched::workload {

PoissonArrivals::PoissonArrivals(double qps, sim::Rng rng)
    : qps_(qps), rng_(rng) {
  if (!(qps > 0.0)) throw std::invalid_argument("PoissonArrivals: qps <= 0");
}

double PoissonArrivals::next_ms() {
  // Inter-arrival ~ Exp(qps) in seconds -> * 1000 for ms.
  now_ms_ += rng_.exponential(qps_) * 1000.0;
  return now_ms_;
}

UniformArrivals::UniformArrivals(double period_ms) : period_ms_(period_ms) {
  if (!(period_ms > 0.0))
    throw std::invalid_argument("UniformArrivals: period <= 0");
}

MmppArrivals::MmppArrivals(double qps_burst, double qps_calm,
                           double mean_sojourn_ms, sim::Rng rng)
    : qps_burst_(qps_burst),
      qps_calm_(qps_calm),
      mean_sojourn_ms_(mean_sojourn_ms),
      rng_(rng) {
  if (!(qps_burst > 0.0) || !(qps_calm > 0.0))
    throw std::invalid_argument("MmppArrivals: rates must be positive");
  if (!(mean_sojourn_ms > 0.0))
    throw std::invalid_argument("MmppArrivals: sojourn must be positive");
  state_end_ms_ = rng_.exponential(1.0 / mean_sojourn_ms_);
}

double MmppArrivals::next_ms() {
  for (;;) {
    const double rate = (in_burst_ ? qps_burst_ : qps_calm_) / 1000.0;  // /ms
    const double gap = rng_.exponential(rate);
    if (now_ms_ + gap <= state_end_ms_) {
      now_ms_ += gap;
      return now_ms_;
    }
    // The candidate arrival falls past the state boundary: advance to the
    // boundary and resample in the new state (memorylessness makes the
    // discarded partial gap exact, not an approximation).
    now_ms_ = state_end_ms_;
    in_burst_ = !in_burst_;
    state_end_ms_ = now_ms_ + rng_.exponential(1.0 / mean_sojourn_ms_);
  }
}

TraceArrivals::TraceArrivals(std::vector<double> times_ms)
    : times_ms_(std::move(times_ms)) {
  for (std::size_t i = 1; i < times_ms_.size(); ++i)
    if (times_ms_[i] < times_ms_[i - 1])
      throw std::invalid_argument("TraceArrivals: times must be non-decreasing");
}

double TraceArrivals::next_ms() {
  if (next_ >= times_ms_.size())
    throw std::out_of_range("TraceArrivals: trace exhausted");
  return times_ms_[next_++];
}

double UniformArrivals::next_ms() {
  if (first_) {
    first_ = false;
    return now_ms_;
  }
  now_ms_ += period_ms_;
  return now_ms_;
}

}  // namespace pjsched::workload
