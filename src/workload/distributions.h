// Per-job total-work distributions for the paper's evaluation (Section 6,
// Figure 3).  The original Bing and finance traces are proprietary; these
// are discretized reconstructions of the published histograms (Figure 3a/3b)
// calibrated so that the utilizations at the paper's QPS operating points on
// m = 16 processors land in the paper's low (~50%) / medium (~60%) /
// high (~70%) bands.  All sampling is deterministic given the caller's Rng.
//
// Work is expressed in *milliseconds* here; the instance generator
// (generator.h) converts to integer simulator work units.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sim/rng.h"

namespace pjsched::workload {

/// Interface: distribution over a job's total work, in milliseconds.
class WorkDistribution {
 public:
  virtual ~WorkDistribution() = default;
  virtual std::string name() const = 0;
  /// Draws one job's total work in ms (always > 0).
  virtual double sample_ms(sim::Rng& rng) const = 0;
  /// Exact mean of the distribution in ms.
  virtual double mean_ms() const = 0;
};

/// A finite distribution over (work_ms, probability) bins; probabilities
/// are normalized on construction.  Matches the histogram presentation of
/// Figure 3.
class DiscreteWorkDistribution final : public WorkDistribution {
 public:
  struct Bin {
    double work_ms;
    double probability;  ///< relative weight; normalized internally
  };

  DiscreteWorkDistribution(std::string name, std::vector<Bin> bins);

  std::string name() const override { return name_; }
  double sample_ms(sim::Rng& rng) const override;
  double mean_ms() const override { return mean_ms_; }

  const std::vector<Bin>& bins() const { return bins_; }

  /// Probability of each bin (normalized), aligned with bins().
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::string name_;
  std::vector<Bin> bins_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
  double mean_ms_ = 0.0;
};

/// Log-normal work distribution truncated to [min_ms, max_ms]
/// (the paper's synthetic workload).
class LognormalWorkDistribution final : public WorkDistribution {
 public:
  /// exp(mu + sigma N(0,1)), resampled until within [min_ms, max_ms].
  LognormalWorkDistribution(double mu, double sigma, double min_ms,
                            double max_ms);

  std::string name() const override { return "lognormal"; }
  double sample_ms(sim::Rng& rng) const override;
  /// Mean of the *untruncated* log-normal (the truncation bounds are wide
  /// enough that the difference is < 1% for the default parameters).
  double mean_ms() const override;

 private:
  double mu_, sigma_, min_ms_, max_ms_;
};

/// Figure 3(a): Bing web-search request work distribution — a heavy head of
/// cheap queries (~5-10 ms) with a long tail out to ~205 ms.  Mean ≈ 11 ms.
DiscreteWorkDistribution bing_distribution();

/// Figure 3(b): option-pricing finance-server work distribution — bimodal,
/// a large mass at 4-12 ms and a secondary mass around 32-44 ms.
/// Mean ≈ 11.8 ms.
DiscreteWorkDistribution finance_distribution();

/// The paper's synthetic log-normal workload, calibrated to mean ≈ 10 ms
/// (mu = ln(10) - sigma^2/2, sigma = 1), truncated to [1 ms, 300 ms].
LognormalWorkDistribution default_lognormal_distribution();

/// Machine utilization produced by Poisson arrivals at `qps` against this
/// distribution on `m` unit-speed processors:  qps * mean_work_sec / m.
double utilization(const WorkDistribution& dist, double qps, unsigned m);

}  // namespace pjsched::workload
