// Arrival processes.  The paper's evaluation generates inter-arrival times
// from a Poisson process with mean 1/QPS (Section 6, "Workloads").
#pragma once

#include <vector>

#include "src/sim/rng.h"

namespace pjsched::workload {

/// Poisson arrival process: exponential inter-arrival times with rate
/// `qps` jobs per second.  next_ms() returns successive absolute arrival
/// times in milliseconds, starting from 0.
class PoissonArrivals {
 public:
  PoissonArrivals(double qps, sim::Rng rng);

  /// Absolute arrival time of the next job, in ms (strictly increasing).
  double next_ms();

  double qps() const { return qps_; }

 private:
  double qps_;
  double now_ms_ = 0.0;
  sim::Rng rng_;
};

/// Deterministic, evenly spaced arrivals (period = 1000/qps ms); used by
/// tests and by the Section 5 lower-bound instance, which releases jobs at
/// exact multiples of a fixed period.
class UniformArrivals {
 public:
  explicit UniformArrivals(double period_ms);
  double next_ms();

 private:
  double period_ms_;
  double now_ms_ = 0.0;
  bool first_ = true;
};

/// Markov-modulated Poisson process with two states (burst / calm): the
/// process alternates between exponentially-distributed sojourns in a
/// high-rate and a low-rate state.  At equal average rate this produces a
/// far heavier backlog tail than plain Poisson — the stress case for
/// maximum flow time.
class MmppArrivals {
 public:
  /// `qps_burst` / `qps_calm`: arrival rates in each state;
  /// `mean_sojourn_ms`: average dwell time in each state.
  MmppArrivals(double qps_burst, double qps_calm, double mean_sojourn_ms,
               sim::Rng rng);

  double next_ms();

  /// Long-run average rate: the two states are symmetric in dwell time.
  double average_qps() const { return (qps_burst_ + qps_calm_) / 2.0; }

 private:
  double qps_burst_, qps_calm_, mean_sojourn_ms_;
  bool in_burst_ = true;
  double now_ms_ = 0.0;
  double state_end_ms_ = 0.0;
  sim::Rng rng_;
};

/// Replays an explicit list of absolute arrival times (e.g. from a
/// production trace); must be non-decreasing.
class TraceArrivals {
 public:
  explicit TraceArrivals(std::vector<double> times_ms);
  double next_ms();
  bool exhausted() const { return next_ >= times_ms_.size(); }

 private:
  std::vector<double> times_ms_;
  std::size_t next_ = 0;
};

/// Generates `count` absolute arrival times in ms from any arrival source.
template <typename Arrivals>
std::vector<double> take_arrivals(Arrivals& src, std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(src.next_ms());
  return out;
}

}  // namespace pjsched::workload
