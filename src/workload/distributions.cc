#include "src/workload/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pjsched::workload {

DiscreteWorkDistribution::DiscreteWorkDistribution(std::string name,
                                                   std::vector<Bin> bins)
    : name_(std::move(name)), bins_(std::move(bins)) {
  if (bins_.empty())
    throw std::invalid_argument("DiscreteWorkDistribution: no bins");
  double total = 0.0;
  for (const Bin& b : bins_) {
    if (!(b.work_ms > 0.0))
      throw std::invalid_argument("DiscreteWorkDistribution: non-positive work");
    if (!(b.probability > 0.0))
      throw std::invalid_argument("DiscreteWorkDistribution: non-positive probability");
    total += b.probability;
  }
  pmf_.reserve(bins_.size());
  cdf_.reserve(bins_.size());
  double acc = 0.0;
  for (const Bin& b : bins_) {
    const double p = b.probability / total;
    pmf_.push_back(p);
    acc += p;
    cdf_.push_back(acc);
    mean_ms_ += p * b.work_ms;
  }
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

double DiscreteWorkDistribution::sample_ms(sim::Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf_.begin()), bins_.size() - 1);
  return bins_[idx].work_ms;
}

LognormalWorkDistribution::LognormalWorkDistribution(double mu, double sigma,
                                                     double min_ms,
                                                     double max_ms)
    : mu_(mu), sigma_(sigma), min_ms_(min_ms), max_ms_(max_ms) {
  if (!(sigma > 0.0))
    throw std::invalid_argument("LognormalWorkDistribution: sigma <= 0");
  if (!(min_ms > 0.0) || !(min_ms < max_ms))
    throw std::invalid_argument("LognormalWorkDistribution: bad truncation range");
}

double LognormalWorkDistribution::sample_ms(sim::Rng& rng) const {
  // Rejection against the truncation bounds; the defaults reject < 2% of
  // draws, so this terminates quickly with overwhelming probability.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = rng.lognormal(mu_, sigma_);
    if (x >= min_ms_ && x <= max_ms_) return x;
  }
  return std::clamp(std::exp(mu_), min_ms_, max_ms_);
}

double LognormalWorkDistribution::mean_ms() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

DiscreteWorkDistribution bing_distribution() {
  // Reconstruction of Figure 3(a): head-heavy with a tail to ~205 ms.
  return DiscreteWorkDistribution(
      "bing", {
                  {5.0, 0.60},
                  {10.0, 0.20},
                  {15.0, 0.06},
                  {20.0, 0.04},
                  {30.0, 0.03},
                  {45.0, 0.02},
                  {65.0, 0.015},
                  {95.0, 0.007},
                  {135.0, 0.003},
                  {205.0, 0.001},
              });
}

DiscreteWorkDistribution finance_distribution() {
  // Reconstruction of Figure 3(b): bimodal over 4..52 ms.
  return DiscreteWorkDistribution(
      "finance", {
                     {4.0, 0.45},
                     {8.0, 0.20},
                     {12.0, 0.08},
                     {16.0, 0.04},
                     {20.0, 0.03},
                     {24.0, 0.02},
                     {28.0, 0.02},
                     {32.0, 0.03},
                     {36.0, 0.04},
                     {40.0, 0.03},
                     {44.0, 0.015},
                     {48.0, 0.007},
                     {52.0, 0.003},
                 });
}

LognormalWorkDistribution default_lognormal_distribution() {
  const double sigma = 1.0;
  const double mu = std::log(10.0) - sigma * sigma / 2.0;
  return LognormalWorkDistribution(mu, sigma, 1.0, 300.0);
}

double utilization(const WorkDistribution& dist, double qps, unsigned m) {
  if (m == 0) throw std::invalid_argument("utilization: m == 0");
  return qps * (dist.mean_ms() / 1000.0) / static_cast<double>(m);
}

}  // namespace pjsched::workload
