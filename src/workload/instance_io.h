// Plain-text (de)serialization of full online instances, so generated
// workloads can be saved, shared, and replayed bit-for-bit (and so the CLI
// can operate on instance files).  Format:
//
//   instance <job_count>
//   job <arrival> <weight>
//   dag <node_count> <edge_count>     (the dag format of dag/serialize.h)
//   node ...
//   edge ...
//   end
//   ... one job record per job ...
//   endinstance
//
// '#' comments and arbitrary whitespace are tolerated between tokens.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/types.h"

namespace pjsched::workload {

void write_instance(std::ostream& os, const core::Instance& instance);
std::string instance_to_text(const core::Instance& instance);

/// Throws std::invalid_argument on malformed input.
core::Instance read_instance(std::istream& is);
core::Instance instance_from_text(const std::string& text);

}  // namespace pjsched::workload
