// The Section 5 adversarial instance showing work stealing is
// Omega(log n)-competitive even with constant speed augmentation.
//
// With m = log2(n) processors, the instance releases identical "star" jobs
// (one unit-work root preceding m/10 independent unit-work tasks) at
// multiples of 2m time.  OPT finishes each job in 2 steps; randomized work
// stealing executes some job entirely sequentially with probability roughly
// (1/2e)^(m/10) per job, so among 2^Theta(m) jobs some job takes
// ~m/10 + 1 = Theta(log n) time with high probability.
//
// The paper's argument needs n = 2^Theta(m) jobs, which is infeasible to
// simulate for interesting m; empirically the sequential-execution
// probability is far larger than the proof's loose bound, so a few thousand
// jobs per m suffice to observe max flow growing linearly in m (that is,
// logarithmically in the n the proof envisions).  The bench
// (bench/bench_lower_bound.cc) sweeps m and reports exactly that.
#pragma once

#include <cstdint>

#include "src/core/types.h"

namespace pjsched::workload {

struct LowerBoundConfig {
  unsigned m = 40;             ///< processors; the proof sets m = log2(n)
  std::size_t num_jobs = 2000; ///< jobs actually generated
  /// Children per star job; the paper uses m/10 (>= 1 enforced).
  unsigned children = 0;       ///< 0 = use max(1, m/10)
};

/// Builds the instance.  Job j arrives at time 2*m*j; every job is
/// star(children).
core::Instance make_lower_bound_instance(const LowerBoundConfig& cfg);

/// OPT's max flow on this instance with m processors: the root runs for one
/// step, then all children run in parallel — 2 time units (assuming
/// children <= m).
double lower_bound_opt_flow();

}  // namespace pjsched::workload
