// Streaming counterparts of the instance generators: JobSources that draw
// each job on demand instead of materializing the whole instance.
//
// RNG derivation is identical to generate_instance — one root seed forked
// into independent size / arrival / weight streams, each advanced once per
// job in generation order — so a streamed run and a materialized run of the
// same configuration see bit-identical jobs.  generate_instance itself is
// implemented as core::materialize over GeneratedJobSource, which makes the
// equivalence structural rather than something to keep in sync by hand.
#pragma once

#include <vector>

#include "src/core/job_source.h"
#include "src/sim/rng.h"
#include "src/workload/arrivals.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched::workload {

/// Streams the jobs generate_instance(dist, cfg) would materialize: Poisson
/// arrivals at cfg.qps, weights uniform over cfg.weight_classes, sizes from
/// `dist`, each job shaped as a parallel-for DAG.  `dist` must outlive the
/// source.  Job ids are the generation order (0, 1, ...), which is also
/// arrival order — Poisson arrival times are strictly increasing.
class GeneratedJobSource final : public core::JobSource {
 public:
  /// Throws std::invalid_argument on cfg.num_jobs == 0, non-positive
  /// cfg.units_per_ms, or empty cfg.weight_classes.
  GeneratedJobSource(const WorkDistribution& dist, const GeneratorConfig& cfg);

  std::size_t size() const override { return cfg_.num_jobs; }

 protected:
  bool produce(core::StreamedJob& out) override;

 private:
  const WorkDistribution* dist_;
  GeneratorConfig cfg_;
  PoissonArrivals arrivals_;
  sim::Rng size_rng_;
  sim::Rng weight_rng_;
  std::size_t next_ = 0;
};

/// Streaming counterpart of generate_instance_with_arrivals: one job per
/// caller-supplied absolute arrival time in ms (must be non-decreasing —
/// enforced at acquisition by the engines' arena); cfg.num_jobs and cfg.qps
/// are ignored.  `dist` must outlive the source.
class ArrivalListJobSource final : public core::JobSource {
 public:
  /// Throws std::invalid_argument on an empty arrival list, non-positive
  /// cfg.units_per_ms, or empty cfg.weight_classes.
  ArrivalListJobSource(const WorkDistribution& dist,
                       const GeneratorConfig& cfg,
                       std::vector<double> arrivals_ms);

  std::size_t size() const override { return arrivals_ms_.size(); }

 protected:
  bool produce(core::StreamedJob& out) override;

 private:
  const WorkDistribution* dist_;
  GeneratorConfig cfg_;
  std::vector<double> arrivals_ms_;
  sim::Rng size_rng_;
  sim::Rng weight_rng_;
  std::size_t next_ = 0;
};

}  // namespace pjsched::workload
