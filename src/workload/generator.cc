#include "src/workload/generator.h"

#include <cmath>
#include <stdexcept>

#include "src/core/job_source.h"
#include "src/dag/builders.h"
#include "src/workload/streaming_source.h"

namespace pjsched::workload {

dag::Dag make_parallel_for_job(double work_ms, std::size_t grains,
                               double units_per_ms) {
  if (grains == 0) throw std::invalid_argument("make_parallel_for_job: grains == 0");
  const auto total_units = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, work_ms * units_per_ms)));
  if (total_units <= 2 || grains == 1) {
    // Too small to be worth forking: a single sequential node.
    return dag::single_node(std::max<std::uint64_t>(total_units, 1));
  }
  // Root and join take one unit each; the body splits the rest as evenly as
  // integer units allow (the first `rem` grains get one extra unit).
  const std::uint64_t body_units = total_units - 2;
  const std::size_t g = std::min<std::size_t>(grains, body_units);
  const std::uint64_t base = body_units / g;
  const std::uint64_t rem = body_units % g;
  return dag::parallel_for_dag_fn(
      g, [base, rem](std::size_t i) { return base + (i < rem ? 1 : 0); },
      /*root_work=*/1, /*join_work=*/1);
}

// Both generators are thin materializations of the streaming sources in
// streaming_source.h: validate (keeping the historical messages), build the
// source, drain it.  Streamed ids are generation order, so the materialized
// job list is bit-identical to what the loop-based implementations built.

core::Instance generate_instance_with_arrivals(
    const WorkDistribution& dist, const GeneratorConfig& cfg,
    const std::vector<double>& arrivals_ms) {
  if (arrivals_ms.empty())
    throw std::invalid_argument("generate_instance_with_arrivals: no arrivals");
  if (!(cfg.units_per_ms > 0.0))
    throw std::invalid_argument("generate_instance_with_arrivals: units_per_ms <= 0");
  if (cfg.weight_classes.empty())
    throw std::invalid_argument("generate_instance_with_arrivals: no weight classes");

  ArrivalListJobSource source(dist, cfg, arrivals_ms);
  return core::materialize(source);
}

core::Instance generate_instance(const WorkDistribution& dist,
                                 const GeneratorConfig& cfg) {
  if (cfg.num_jobs == 0)
    throw std::invalid_argument("generate_instance: num_jobs == 0");
  if (!(cfg.units_per_ms > 0.0))
    throw std::invalid_argument("generate_instance: units_per_ms <= 0");
  if (cfg.weight_classes.empty())
    throw std::invalid_argument("generate_instance: no weight classes");

  GeneratedJobSource source(dist, cfg);
  return core::materialize(source);
}

}  // namespace pjsched::workload
