#include "src/workload/streaming_source.h"

#include <stdexcept>

namespace pjsched::workload {

namespace {

void validate_common(const GeneratorConfig& cfg, const char* who) {
  if (!(cfg.units_per_ms > 0.0))
    throw std::invalid_argument(std::string(who) + ": units_per_ms <= 0");
  if (cfg.weight_classes.empty())
    throw std::invalid_argument(std::string(who) + ": no weight classes");
}

}  // namespace

GeneratedJobSource::GeneratedJobSource(const WorkDistribution& dist,
                                       const GeneratorConfig& cfg)
    : dist_(&dist),
      cfg_(cfg),
      // Same derivation as a materialized generate_instance: root = Rng(seed),
      // size stream = fork(1), arrivals = fork(2), weights = fork(3).  fork()
      // depends only on the root's seed, so forking from three temporaries is
      // bit-identical to forking one root three times.
      arrivals_(cfg.qps, sim::Rng(cfg.seed).fork(2)),
      size_rng_(sim::Rng(cfg.seed).fork(1)),
      weight_rng_(sim::Rng(cfg.seed).fork(3)) {
  if (cfg.num_jobs == 0)
    throw std::invalid_argument("GeneratedJobSource: num_jobs == 0");
  validate_common(cfg, "GeneratedJobSource");
}

bool GeneratedJobSource::produce(core::StreamedJob& out) {
  if (next_ >= cfg_.num_jobs) return false;
  out.id = next_++;
  out.arrival = arrivals_.next_ms() * cfg_.units_per_ms;  // ms -> unit time
  out.weight =
      cfg_.weight_classes[weight_rng_.uniform_int(cfg_.weight_classes.size())];
  out.graph = make_parallel_for_job(dist_->sample_ms(size_rng_), cfg_.grains,
                                    cfg_.units_per_ms);
  out.borrowed = nullptr;
  return true;
}

ArrivalListJobSource::ArrivalListJobSource(const WorkDistribution& dist,
                                           const GeneratorConfig& cfg,
                                           std::vector<double> arrivals_ms)
    : dist_(&dist),
      cfg_(cfg),
      arrivals_ms_(std::move(arrivals_ms)),
      // generate_instance_with_arrivals forks streams 1 and 3 only (no
      // Poisson stream) — mirror that exactly.
      size_rng_(sim::Rng(cfg.seed).fork(1)),
      weight_rng_(sim::Rng(cfg.seed).fork(3)) {
  if (arrivals_ms_.empty())
    throw std::invalid_argument("ArrivalListJobSource: no arrivals");
  validate_common(cfg, "ArrivalListJobSource");
}

bool ArrivalListJobSource::produce(core::StreamedJob& out) {
  if (next_ >= arrivals_ms_.size()) return false;
  out.id = next_;
  out.arrival = arrivals_ms_[next_] * cfg_.units_per_ms;
  ++next_;
  out.weight =
      cfg_.weight_classes[weight_rng_.uniform_int(cfg_.weight_classes.size())];
  out.graph = make_parallel_for_job(dist_->sample_ms(size_rng_), cfg_.grains,
                                    cfg_.units_per_ms);
  out.borrowed = nullptr;
  return true;
}

}  // namespace pjsched::workload
