#include "src/workload/lower_bound_instance.h"

#include <algorithm>
#include <stdexcept>

#include "src/dag/builders.h"

namespace pjsched::workload {

core::Instance make_lower_bound_instance(const LowerBoundConfig& cfg) {
  if (cfg.m == 0) throw std::invalid_argument("make_lower_bound_instance: m == 0");
  if (cfg.num_jobs == 0)
    throw std::invalid_argument("make_lower_bound_instance: num_jobs == 0");
  const unsigned children =
      cfg.children != 0 ? cfg.children : std::max(1u, cfg.m / 10);
  if (children > cfg.m)
    throw std::invalid_argument(
        "make_lower_bound_instance: children > m breaks the OPT = 2 argument");

  const dag::Dag job_shape = dag::star(children);
  core::Instance inst;
  inst.jobs.reserve(cfg.num_jobs);
  for (std::size_t j = 0; j < cfg.num_jobs; ++j) {
    core::JobSpec spec;
    spec.arrival = 2.0 * static_cast<double>(cfg.m) * static_cast<double>(j);
    spec.graph = job_shape;  // shared shape, copied per job
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

double lower_bound_opt_flow() { return 2.0; }

}  // namespace pjsched::workload
