#include "src/workload/instance_io.h"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/dag/serialize.h"

namespace pjsched::workload {

void write_instance(std::ostream& os, const core::Instance& instance) {
  instance.validate();
  os << "instance " << instance.size() << '\n';
  for (const core::JobSpec& job : instance.jobs) {
    os << "job " << job.arrival << ' ' << job.weight << '\n';
    dag::write_text(os, job.graph);
  }
  os << "endinstance\n";
}

std::string instance_to_text(const core::Instance& instance) {
  std::ostringstream oss;
  write_instance(oss, instance);
  return oss.str();
}

namespace {

bool next_token(std::istream& is, std::string& tok) {
  while (is >> tok) {
    if (tok[0] == '#') {
      is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    return true;
  }
  return false;
}

double expect_double(std::istream& is, const char* what) {
  std::string tok;
  if (!next_token(is, tok))
    throw std::invalid_argument(std::string("read_instance: missing ") + what);
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("read_instance: bad ") + what +
                                " '" + tok + "'");
  }
}

}  // namespace

core::Instance read_instance(std::istream& is) {
  std::string tok;
  if (!next_token(is, tok) || tok != "instance")
    throw std::invalid_argument("read_instance: expected 'instance' header");
  const double count_raw = expect_double(is, "job count");
  if (count_raw < 1 || count_raw != static_cast<double>(
                                        static_cast<std::size_t>(count_raw)))
    throw std::invalid_argument("read_instance: bad job count");
  const auto count = static_cast<std::size_t>(count_raw);

  core::Instance inst;
  inst.jobs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    if (!next_token(is, tok) || tok != "job")
      throw std::invalid_argument("read_instance: expected 'job' record");
    core::JobSpec spec;
    spec.arrival = expect_double(is, "arrival");
    spec.weight = expect_double(is, "weight");
    spec.graph = dag::read_text(is);
    inst.jobs.push_back(std::move(spec));
  }
  if (!next_token(is, tok) || tok != "endinstance")
    throw std::invalid_argument("read_instance: expected 'endinstance'");
  inst.validate();
  return inst;
}

core::Instance instance_from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_instance(iss);
}

}  // namespace pjsched::workload
