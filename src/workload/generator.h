// Full online-instance generation: sample job sizes from a work
// distribution, arrival times from a Poisson process at a target QPS, and
// shape each job as a parallel-for DAG (the paper's evaluation jobs are
// "CPU-intensive computation ... parallelized using parallel for loops").
//
// Unit conventions: distributions speak milliseconds; the simulator speaks
// integer work units.  `units_per_ms` fixes the granularity (default 10:
// one unit = 100 microseconds).  Simulated Time is unit-work time, so
// Time-to-ms conversion divides by units_per_ms.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/workload/distributions.h"

namespace pjsched::workload {

struct GeneratorConfig {
  std::size_t num_jobs = 1000;
  double qps = 1000.0;            ///< Poisson arrival rate, jobs per second
  double units_per_ms = 10.0;     ///< simulator work units per millisecond
  std::size_t grains = 32;        ///< parallel-for grains per job
  std::uint64_t seed = 42;
  /// Job weights are drawn uniformly from this set (all 1.0 = unweighted,
  /// the default).  Used by the BWF / weighted max-flow experiments.
  std::vector<double> weight_classes = {1.0};
};

/// Converts simulated Time (unit-work time) to milliseconds under `cfg`.
inline double time_to_ms(core::Time t, const GeneratorConfig& cfg) {
  return t / cfg.units_per_ms;
}

/// Builds one parallel-for job DAG of approximately `work_ms` total work:
/// a unit-work root, `grains` body nodes splitting the work as evenly as
/// integer units allow, and a unit-work join.
dag::Dag make_parallel_for_job(double work_ms, std::size_t grains,
                               double units_per_ms);

/// Generates a complete online instance from the distribution and config.
core::Instance generate_instance(const WorkDistribution& dist,
                                 const GeneratorConfig& cfg);

/// Like generate_instance but with caller-supplied absolute arrival times
/// in ms (e.g. from MmppArrivals or TraceArrivals); cfg.num_jobs and
/// cfg.qps are ignored — one job per arrival.
core::Instance generate_instance_with_arrivals(
    const WorkDistribution& dist, const GeneratorConfig& cfg,
    const std::vector<double>& arrivals_ms);

}  // namespace pjsched::workload
