// Runtime hot-path benchmark suite (google-benchmark): the BM_Runtime*
// baselines distilled into the `runtime` section of BENCH_sim.json (refresh
// with `cmake --build build --target bench_baseline`).
//
// Three shapes, chosen to expose per-task overhead rather than body work —
// exactly the costs Cilk-style runtimes are designed to eliminate (paper
// Section 6 builds on TBB for the same reason):
//   * fork-join fib        — spawn/join recursion, binary tree;
//   * fine-grain parallel_for — grain 1, near-empty body: a pure measure of
//     spawn + deque + join + task-release traffic per grain;
//   * Bing-style DAG       — many jobs, each a shallow wide spawn tree, the
//     shape of the paper's Bing workload (Figure 2).
//
// Each benchmark reports throughput as tasks/sec (items = the pool's
// tasks_executed delta, so admission roots and spawned subtasks all count)
// plus the steal success rate from PoolStats.  Run these in a Release
// build: tools/make_bench_baseline.py loudly annotates debug snapshots.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/runtime/thread_pool.h"

namespace {

using namespace pjsched::runtime;

unsigned bench_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void report_pool_delta(benchmark::State& state, const PoolStats& before,
                       const PoolStats& after) {
  state.SetItemsProcessed(
      static_cast<std::int64_t>(after.tasks_executed - before.tasks_executed));
  const std::uint64_t attempts = after.steal_attempts - before.steal_attempts;
  const std::uint64_t hits = after.successful_steals - before.successful_steals;
  state.counters["steal_success_rate"] =
      attempts == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(attempts);
}

std::uint64_t fib_seq(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

constexpr int kFibCutoff = 8;

void fib_task(TaskContext& ctx, int n, std::uint64_t* out) {
  if (n < kFibCutoff) {
    *out = fib_seq(n);
    return;
  }
  std::uint64_t a = 0, b = 0;
  WaitGroup wg;
  ctx.spawn([n, &a](TaskContext& inner) { fib_task(inner, n - 1, &a); }, wg);
  fib_task(ctx, n - 2, &b);
  ctx.wait_help(wg);
  *out = a + b;
}

/// Fork-join fib: binary spawn recursion with a sequential cutoff.
void BM_RuntimeFib(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadPool pool({.workers = bench_workers(), .steal_k = 0, .seed = 1});
  const PoolStats before = pool.stats();
  std::uint64_t result = 0;
  for (auto _ : state) {
    auto job = pool.submit(
        [n, &result](TaskContext& ctx) { fib_task(ctx, n, &result); });
    job->wait();
  }
  if (result != fib_seq(n)) state.SkipWithError("fib mismatch");
  report_pool_delta(state, before, pool.stats());
}
BENCHMARK(BM_RuntimeFib)->Arg(20)->UseRealTime();

/// Fine-grain parallel_for: grain 1, one multiply per index — per-grain
/// runtime overhead dominates by design.
void BM_RuntimeParallelForFine(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool({.workers = bench_workers(), .steal_k = 0, .seed = 2});
  const PoolStats before = pool.stats();
  for (auto _ : state) {
    auto job = pool.submit([n](TaskContext& ctx) {
      parallel_for(ctx, 0, n, 1, [](std::size_t lo, std::size_t hi) {
        std::uint64_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += i * i;
        benchmark::DoNotOptimize(local);
      });
    });
    job->wait();
  }
  report_pool_delta(state, before, pool.stats());
}
BENCHMARK(BM_RuntimeParallelForFine)->Arg(4096)->UseRealTime();

/// Spawn-heavy Bing-style DAGs: a burst of jobs, each a wide shallow tree
/// (root -> 24 children -> 8 grandchildren each) of near-empty tasks.
void BM_RuntimeBingDag(benchmark::State& state) {
  ThreadPool pool({.workers = bench_workers(), .steal_k = 0, .seed = 3});
  const PoolStats before = pool.stats();
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (int j = 0; j < 16; ++j) {
      pool.submit([&sink](TaskContext& ctx) {
        WaitGroup wg;
        for (int c = 0; c < 24; ++c) {
          ctx.spawn(
              [&sink](TaskContext& inner) {
                for (int g = 0; g < 8; ++g)
                  inner.spawn([&sink](TaskContext&) {
                    sink.fetch_add(1, std::memory_order_relaxed);
                  });
              },
              wg);
        }
        ctx.wait_help(wg);
      });
    }
    pool.wait_all();
  }
  benchmark::DoNotOptimize(sink.load());
  report_pool_delta(state, before, pool.stats());
}
BENCHMARK(BM_RuntimeBingDag)->UseRealTime();

}  // namespace

#include "bench/gbench_main.h"
