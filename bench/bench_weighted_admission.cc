// Extension experiment: weighted work stealing.
//
// The paper proves BWF is scalable for weighted max flow but leaves a
// *distributed* weighted scheduler open.  This bench evaluates the natural
// candidate implemented in pjsched: steal-k-first whose global-queue
// admission picks the heaviest queued job instead of the oldest
// ("-bwf" variants).  On a weighted Bing-like workload the weighted
// admission consistently cuts max weighted flow over plain FIFO admission,
// approaching the centralized BWF, while leaving unweighted max flow close
// to the paper's scheduler.
#include <iostream>

#include "src/metrics/table.h"
#include "src/sched/bwf.h"
#include "src/sched/work_stealing.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;
  const unsigned m = 16;
  const auto dist = workload::bing_distribution();

  for (double qps : {900.0, 1200.0}) {
    workload::GeneratorConfig gen;
    gen.num_jobs = 8000;
    gen.qps = qps;
    gen.units_per_ms = 100.0;
    gen.seed = 202;
    gen.weight_classes = {1.0, 4.0, 16.0, 64.0};
    const auto inst = workload::generate_instance(dist, gen);

    std::cout << "# weighted Bing workload @ QPS " << qps << " (util "
              << workload::utilization(dist, qps, m)
              << "), weights {1,4,16,64}, m=16, speed 1\n";
    metrics::Table table(
        {"scheduler", "wmax_flow_ms", "max_flow_ms", "mean_flow_ms"});

    const auto add = [&](core::ScheduleResult res) {
      table.add_row({res.scheduler_name,
                     metrics::Table::cell(res.max_weighted_flow / gen.units_per_ms),
                     metrics::Table::cell(res.max_flow / gen.units_per_ms),
                     metrics::Table::cell(res.mean_flow / gen.units_per_ms)});
    };

    sched::BwfScheduler bwf;
    add(bwf.run(inst, {m, 1.0}));
    for (unsigned k : {0u, 16u}) {
      sched::WorkStealingScheduler plain(k, 77, false);
      sched::WorkStealingScheduler weighted(k, 77, true);
      add(plain.run(inst, {m, 1.0}));
      add(weighted.run(inst, {m, 1.0}));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
