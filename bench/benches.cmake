# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains nothing but the bench binaries and
# `for b in build/bench/*; do $b; done` runs the whole harness.
function(pjsched_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE pjsched pjsched_runtime Threads::Threads)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# Figure/table reproduction harnesses (plain binaries printing tables).
pjsched_add_bench(bench_fig2_bing)
pjsched_add_bench(bench_fig2_finance)
pjsched_add_bench(bench_fig2_lognormal)
pjsched_add_bench(bench_fig3_distributions)
pjsched_add_bench(bench_fifo_competitive)
pjsched_add_bench(bench_ws_competitive)
pjsched_add_bench(bench_bwf_weighted)
pjsched_add_bench(bench_steal_k_ablation)
pjsched_add_bench(bench_fault_degradation)

# google-benchmark micro-benches.  Each includes bench/gbench_main.h, which
# reports PJSCHED_BUILD_TYPE (the build type of *our* code, unlike
# google-benchmark's library_build_type) in the JSON context so the
# BENCH_sim.json distiller can flag unoptimized snapshots.
function(pjsched_add_gbench name)
  pjsched_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
  target_compile_definitions(${name} PRIVATE PJSCHED_BUILD_TYPE="$<CONFIG>")
endfunction()
pjsched_add_gbench(bench_runtime_micro)
# Lemma 5.1 adversarial-instance sweep; stays standalone-runnable (the CI
# smoke step executes it with no arguments).
pjsched_add_gbench(bench_lower_bound)
pjsched_add_gbench(bench_runtime)
pjsched_add_gbench(bench_sim_engine)
pjsched_add_gbench(bench_service)
target_link_libraries(bench_service PRIVATE pjsched_service)
pjsched_add_gbench(bench_ingest)
target_link_libraries(bench_ingest PRIVATE pjsched_service)
pjsched_add_bench(bench_stretch)

# Perf-snapshot target: runs the BM_Baseline* simulation suite and the
# BM_Runtime* hot-path suite in JSON mode and distills both into
# BENCH_sim.json at the repo root (steps/sec fast vs exact, trials/sec
# sequential vs parallel, runtime tasks/sec vs the committed pre-slab
# baseline bench/runtime_before.json, wall time, host metadata).  The
# distiller annotates snapshots from unoptimized builds and 1-CPU hosts —
# refresh from a Release build on real parallel hardware:
# `cmake --build build --target bench_baseline`.
find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_Interpreter_FOUND)
  set(PJSCHED_PYTHON ${Python3_EXECUTABLE})
else()
  set(PJSCHED_PYTHON python3)
endif()
add_custom_target(bench_baseline
  COMMAND $<TARGET_FILE:bench_sim_engine>
          --benchmark_filter=Baseline
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_sim_raw.json
          --benchmark_out_format=json
  COMMAND $<TARGET_FILE:bench_sim_engine>
          --benchmark_filter=Scaling
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_scaling_raw.json
          --benchmark_out_format=json
  COMMAND $<TARGET_FILE:bench_runtime>
          --benchmark_filter=Runtime
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_runtime_raw.json
          --benchmark_out_format=json
  COMMAND $<TARGET_FILE:bench_service>
          --benchmark_filter=Service
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_service_raw.json
          --benchmark_out_format=json
  COMMAND $<TARGET_FILE:bench_ingest>
          --benchmark_filter=Ingest
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_ingest_raw.json
          --benchmark_out_format=json
  COMMAND ${PJSCHED_PYTHON} ${CMAKE_SOURCE_DIR}/tools/make_bench_baseline.py
          ${CMAKE_BINARY_DIR}/bench_sim_raw.json
          ${CMAKE_SOURCE_DIR}/BENCH_sim.json
          --runtime ${CMAKE_BINARY_DIR}/bench_runtime_raw.json
          --before ${CMAKE_SOURCE_DIR}/bench/runtime_before.json
          --service ${CMAKE_BINARY_DIR}/bench_service_raw.json
          --scaling ${CMAKE_BINARY_DIR}/bench_scaling_raw.json
          --ingest ${CMAKE_BINARY_DIR}/bench_ingest_raw.json
  DEPENDS bench_sim_engine bench_runtime bench_service bench_ingest
  COMMENT "Running BM_Baseline* + BM_Scaling* + BM_Runtime* + BM_Service* + BM_Ingest* and writing BENCH_sim.json"
  VERBATIM)
pjsched_add_bench(bench_weighted_admission)
pjsched_add_bench(bench_mean_vs_max)
pjsched_add_bench(bench_trial_variance)
pjsched_add_bench(bench_burstiness)
pjsched_add_bench(bench_bound_tightness)
