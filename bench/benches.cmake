# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains nothing but the bench binaries and
# `for b in build/bench/*; do $b; done` runs the whole harness.
function(pjsched_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE pjsched pjsched_runtime Threads::Threads)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

# Figure/table reproduction harnesses (plain binaries printing tables).
pjsched_add_bench(bench_fig2_bing)
pjsched_add_bench(bench_fig2_finance)
pjsched_add_bench(bench_fig2_lognormal)
pjsched_add_bench(bench_fig3_distributions)
pjsched_add_bench(bench_lower_bound)
pjsched_add_bench(bench_fifo_competitive)
pjsched_add_bench(bench_ws_competitive)
pjsched_add_bench(bench_bwf_weighted)
pjsched_add_bench(bench_steal_k_ablation)
pjsched_add_bench(bench_fault_degradation)

# google-benchmark micro-benches.
pjsched_add_bench(bench_runtime_micro)
target_link_libraries(bench_runtime_micro PRIVATE benchmark::benchmark)
pjsched_add_bench(bench_sim_engine)
target_link_libraries(bench_sim_engine PRIVATE benchmark::benchmark)
pjsched_add_bench(bench_stretch)

# Perf-snapshot target: runs the BM_Baseline* suite in JSON mode and
# distills it into BENCH_sim.json at the repo root (steps/sec fast vs
# exact, trials/sec sequential vs parallel, wall time, host metadata).
# Refresh with `cmake --build build --target bench_baseline`.
find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_Interpreter_FOUND)
  set(PJSCHED_PYTHON ${Python3_EXECUTABLE})
else()
  set(PJSCHED_PYTHON python3)
endif()
add_custom_target(bench_baseline
  COMMAND $<TARGET_FILE:bench_sim_engine>
          --benchmark_filter=Baseline
          --benchmark_out=${CMAKE_BINARY_DIR}/bench_sim_raw.json
          --benchmark_out_format=json
  COMMAND ${PJSCHED_PYTHON} ${CMAKE_SOURCE_DIR}/tools/make_bench_baseline.py
          ${CMAKE_BINARY_DIR}/bench_sim_raw.json
          ${CMAKE_SOURCE_DIR}/BENCH_sim.json
  DEPENDS bench_sim_engine
  COMMENT "Running BM_Baseline* and writing BENCH_sim.json"
  VERBATIM)
pjsched_add_bench(bench_weighted_admission)
pjsched_add_bench(bench_mean_vs_max)
pjsched_add_bench(bench_trial_variance)
pjsched_add_bench(bench_burstiness)
pjsched_add_bench(bench_bound_tightness)
