// Empirical companion to Theorem 7.1: Biggest-Weight-First (BWF) with
// (1+eps) speed is O(1/eps^2)-competitive for maximum *weighted* flow time
// — and no weight-oblivious policy can be, because of the Omega(W^0.4)
// lower bound without augmentation (Chekuri-Im-Moseley).
//
// Table 1: adversarial weight-spread sweep — a stream of light jobs with a
//   late heavy job.  FIFO's weighted max flow scales with the weight
//   spread W; BWF's does not.
// Table 2: eps sweep at fixed spread — BWF's ratio to the weighted lower
//   bound falls as eps grows, far below the 3/eps^2 analysis ceiling.
// Table 3: random weighted Bing-like workload — BWF vs FIFO vs LIFO on
//   max weighted flow.
#include <iostream>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/metrics/table.h"
#include "src/sched/baselines.h"
#include "src/sched/bwf.h"
#include "src/sched/fifo.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

// Light unit-weight jobs keep the machine saturated; one heavy job of
// weight `spread` arrives mid-stream.  A weight-oblivious FIFO makes it
// wait behind the backlog.
core::Instance spread_instance(double spread) {
  core::Instance inst;
  for (int i = 0; i < 200; ++i) {
    core::JobSpec job;
    job.arrival = static_cast<core::Time>(i) * 4.0;
    job.weight = 1.0;
    job.graph = dag::parallel_for_dag(8, 4);  // W = 34 on 8 procs, load ~1.06
    inst.jobs.push_back(std::move(job));
  }
  core::JobSpec heavy;
  heavy.arrival = 400.0;
  heavy.weight = spread;
  heavy.graph = dag::parallel_for_dag(8, 4);
  inst.jobs.push_back(std::move(heavy));
  return inst;
}

}  // namespace

int main() {
  using namespace pjsched;
  const unsigned m = 8;

  std::cout << "# Theorem 7.1: BWF vs weight-oblivious FIFO, weighted max "
               "flow (speed 1.5, m=8)\n";
  metrics::Table t1({"weight_spread", "bwf_wmax_flow", "fifo_wmax_flow",
                     "fifo_over_bwf"});
  for (double spread : {2.0, 8.0, 32.0, 128.0, 512.0}) {
    const auto inst = spread_instance(spread);
    sched::BwfScheduler bwf;
    sched::FifoScheduler fifo;
    const double b = bwf.run(inst, {m, 1.5}).max_weighted_flow;
    const double f = fifo.run(inst, {m, 1.5}).max_weighted_flow;
    t1.add_row({metrics::Table::cell(spread), metrics::Table::cell(b),
                metrics::Table::cell(f), metrics::Table::cell(f / b)});
  }
  t1.print(std::cout);

  std::cout << "\n# BWF eps sweep at spread 128 (ratio vs weighted lower "
               "bound; theory ceiling 3/eps^2 vs true OPT)\n";
  metrics::Table t2({"eps", "speed", "bwf_wmax_flow", "weighted_lb", "ratio",
                     "theory_3_over_eps2"});
  const auto inst = spread_instance(128.0);
  const double wlb = core::weighted_combined_lower_bound(inst, m);
  for (double eps : {0.25, 0.5, 1.0, 2.0}) {
    sched::BwfScheduler bwf;
    const auto res = bwf.run(inst, {m, 1.0 + eps});
    t2.add_row({metrics::Table::cell(eps), metrics::Table::cell(1.0 + eps),
                metrics::Table::cell(res.max_weighted_flow),
                metrics::Table::cell(wlb),
                metrics::Table::cell(res.max_weighted_flow / wlb),
                metrics::Table::cell(3.0 / (eps * eps))});
  }
  t2.print(std::cout);

  std::cout << "\n# Random weighted workload (Bing sizes, weights in "
               "{1,4,16,64}), QPS 900, m=16, speed 1.25\n";
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = 5000;
  gen.qps = 900.0;
  gen.seed = 71;
  gen.weight_classes = {1.0, 4.0, 16.0, 64.0};
  const auto winst = workload::generate_instance(dist, gen);
  metrics::Table t3({"scheduler", "wmax_flow_ms", "max_flow_ms"});
  sched::BwfScheduler bwf;
  sched::FifoScheduler fifo;
  sched::LifoScheduler lifo;
  for (sched::Scheduler* s :
       {static_cast<sched::Scheduler*>(&bwf),
        static_cast<sched::Scheduler*>(&fifo),
        static_cast<sched::Scheduler*>(&lifo)}) {
    const auto res = s->run(winst, {16, 1.25});
    t3.add_row({res.scheduler_name,
                metrics::Table::cell(res.max_weighted_flow / gen.units_per_ms),
                metrics::Table::cell(res.max_flow / gen.units_per_ms)});
  }
  t3.print(std::cout);
  return 0;
}
