// Supporting experiment: how tight are the lower bounds this library (and
// the paper's Section 6) divide by?
//
// On many tiny unit-work instances where exact OPT is computable by
// exhaustive search, measure  OPT / bound  for each bound and
// scheduler / OPT  for each scheduler.  Takeaway: the OPT-sim bound is
// within a small factor of true OPT on parallel-friendly instances, so the
// Figure-2 "ratio to OPT" columns only mildly overstate the true
// competitive ratios.
#include <iostream>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/sched/exact_opt.h"

int main() {
  using namespace pjsched;

  constexpr int kInstances = 200;
  std::vector<double> opt_over_sim, opt_over_span, fifo_over_opt,
      ws_over_opt;
  std::uint64_t total_states = 0;

  for (int trial = 0; trial < kInstances; ++trial) {
    sim::Rng rng(trial * 7 + 3);
    core::Instance inst;
    const int jobs = 2 + static_cast<int>(rng.uniform_int(3));
    for (int j = 0; j < jobs; ++j) {
      dag::RandomLayeredOptions opt;
      opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(3));
      opt.min_width = 1;
      opt.max_width = 2;
      opt.min_work = 1;
      opt.max_work = 1;
      opt.edge_probability = 0.5;
      core::JobSpec spec;
      spec.arrival = static_cast<double>(rng.uniform_int(5));
      spec.graph = dag::random_layered(rng, opt);
      inst.jobs.push_back(std::move(spec));
    }
    const unsigned m = 1 + static_cast<unsigned>(rng.uniform_int(3));

    const auto exact = sched::exact_optimal_max_flow(inst, m);
    total_states += exact.states_explored;
    const double opt = exact.max_flow;

    opt_over_sim.push_back(opt / core::opt_sim_lower_bound(inst, m));
    opt_over_span.push_back(
        opt / std::max(1.0, core::span_lower_bound(inst)));

    auto fifo = core::parse_scheduler("fifo");
    fifo_over_opt.push_back(
        core::run_scheduler(inst, fifo, {m, 1.0}).max_flow / opt);
    auto ws = core::parse_scheduler("admit-first");
    ws.seed = trial + 1;
    ws_over_opt.push_back(
        core::run_scheduler(inst, ws, {m, 1.0}).max_flow / opt);
  }

  std::cout << "# Bound tightness on " << kInstances
            << " tiny unit-work instances (exact OPT by exhaustive "
               "search; "
            << total_states << " states total)\n";
  metrics::Table table({"ratio", "mean", "p90", "max"});
  const auto add = [&](const char* name, std::vector<double> v) {
    const auto s = metrics::summarize(v);
    table.add_row({name, metrics::Table::cell(s.mean),
                   metrics::Table::cell(s.p90), metrics::Table::cell(s.max)});
  };
  add("OPT / opt-sim-bound", opt_over_sim);
  add("OPT / span-bound", opt_over_span);
  add("FIFO / OPT", fifo_over_opt);
  add("admit-first / OPT", ws_over_opt);
  table.print(std::cout);
  return 0;
}
