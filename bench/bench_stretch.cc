// Extension experiment (paper Section 7, Remarks): maximum stretch for DAG
// jobs via weighted max flow.
//
// The paper observes that both natural DAG readings of stretch — flow
// scaled by 1/W_i (by-work) or by 1/P_i (by-span) — are captured by the
// weighted max-flow objective, so BWF with the corresponding weights is
// essentially the best possible online algorithm for either.  This bench
// quantifies that: on a size-skewed workload, BWF-with-stretch-weights is
// compared against weight-oblivious FIFO and clairvoyant SJF under both
// interpretations, at speeds 1 and 1.5.
#include <iostream>

#include "src/core/run.h"
#include "src/core/stretch.h"
#include "src/metrics/table.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

void sweep(core::StretchKind kind, const char* label,
           const core::Instance& base, unsigned m) {
  auto weighted = base;
  core::apply_stretch_weights(weighted, kind);

  std::cout << "# max stretch, " << label << " (m=" << m << ")\n";
  metrics::Table table(
      {"scheduler", "speed", "max_stretch", "mean_flow_units"});
  for (double speed : {1.0, 1.5}) {
    for (const char* name : {"bwf", "fifo", "sjf"}) {
      // BWF sees the stretch weights; the oblivious baselines see the
      // unweighted instance (their behaviour must not depend on weights).
      const core::Instance& inst =
          std::string(name) == "bwf" ? weighted : base;
      const auto res =
          core::run_scheduler(inst, core::parse_scheduler(name), {m, speed});
      table.add_row({res.scheduler_name, metrics::Table::cell(speed),
                     metrics::Table::cell(core::max_stretch(base, res, kind)),
                     metrics::Table::cell(res.mean_flow)});
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace pjsched;
  // Bing sizes are heavily skewed (5 ms .. 205 ms): exactly the regime
  // where stretch and flow diverge.
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = 4000;
  gen.qps = 1000.0;
  gen.seed = 131;
  const auto inst = workload::generate_instance(dist, gen);
  const unsigned m = 16;

  std::cout << "# Extension: maximum stretch for DAG jobs (Section 7 "
               "Remarks).  BWF runs with w_i = 1/denominator.\n\n";
  sweep(core::StretchKind::kByWork, "by-work (F_i / W_i)", inst, m);
  sweep(core::StretchKind::kBySpan, "by-span (F_i / P_i)", inst, m);
  return 0;
}
