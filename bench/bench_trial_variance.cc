// Supporting experiment: how stable are the randomized schedulers across
// steal seeds?  Theorem 4.1's guarantee is "with high probability"; this
// bench quantifies the spread — max flow mean ± stddev over independent
// trials, on a fixed instance (isolating scheduler randomness) and on
// fresh instances (total variance).
#include <iostream>

#include "src/core/multi_trial.h"
#include "src/metrics/table.h"

int main() {
  using namespace pjsched;
  const auto dist = workload::bing_distribution();

  for (bool fixed : {true, false}) {
    std::cout << "# " << (fixed ? "fixed instance (scheduler randomness only)"
                                : "fresh instance per trial (total variance)")
              << ": Bing @ QPS 1100, m=16, 10000 jobs, 8 trials\n";
    metrics::Table table({"scheduler", "max_flow_mean", "max_flow_stddev",
                          "max_flow_min", "max_flow_max", "ratio_to_opt_mean"});
    for (const char* name : {"admit-first", "steal-16-first", "fifo"}) {
      core::TrialConfig cfg;
      cfg.trials = 8;
      cfg.fixed_instance = fixed;
      cfg.generator.num_jobs = 10000;
      cfg.generator.qps = 1100.0;
      cfg.generator.units_per_ms = 100.0;
      cfg.generator.seed = 51;
      cfg.machine = {16, 1.0};
      cfg.scheduler = core::parse_scheduler(name);
      cfg.scheduler.seed = 9;
      const auto out = core::run_trials(dist, cfg);
      table.add_row({name,
                     metrics::Table::cell(out.max_flow.mean / 100.0),
                     metrics::Table::cell(out.max_flow.stddev / 100.0),
                     metrics::Table::cell(out.max_flow.min / 100.0),
                     metrics::Table::cell(out.max_flow.max / 100.0),
                     metrics::Table::cell(out.ratio_to_opt.mean)});
    }
    table.print(std::cout);
    std::cout << "  (flow columns in ms)\n\n";
  }
  return 0;
}
