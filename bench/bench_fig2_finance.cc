// Reproduces Figure 2(b): max flow time on the option-pricing finance
// workload at QPS 800 / 900 / 1000 under simulated OPT, steal-16-first,
// admit-first (and FIFO for reference).
#include "bench/fig2_common.h"

int main(int argc, char** argv) {
  using namespace pjsched;
  const auto args = benchfig2::parse_args(argc, argv);
  const auto dist = workload::finance_distribution();
  benchfig2::run_fig2(dist, {800.0, 900.0, 1000.0}, args, "Figure 2(b)");
  return 0;
}
