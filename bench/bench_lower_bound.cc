// Empirical companion to Lemma 5.1: work stealing is Omega(log n)-
// competitive even with constant speed augmentation.
//
// The adversarial instance (src/workload/lower_bound_instance.h) releases
// star jobs (1 root + m/10 children, all unit work) every 2m steps on
// m = log2(n) processors.  OPT finishes each job in 2 time units; under
// randomized stealing some jobs execute (nearly) sequentially, so the max
// flow grows linearly in m — i.e. logarithmically in the n = 2^Theta(m)
// the proof envisions.  This bench sweeps m and prints max flow under
// admit-first at speeds 1 and 2 (speed augmentation does not rescue the
// ratio's growth), against OPT's constant 2 and the centralized FIFO,
// which also achieves 2.
#include <cmath>
#include <iostream>

#include "src/metrics/table.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/workload/lower_bound_instance.h"

int main() {
  using namespace pjsched;

  std::cout << "# Lemma 5.1 lower bound: max flow of randomized work "
               "stealing grows ~linearly in m = log2(n)\n"
            << "# while OPT = 2 for every m.  jobs per point: 2000.\n";

  metrics::Table table({"m", "children", "opt_flow", "fifo_flow",
                        "ws_flow_speed1", "ws_flow_speed2",
                        "ws1_over_opt"});
  for (unsigned m : {10u, 20u, 40u, 80u, 160u}) {
    workload::LowerBoundConfig cfg;
    cfg.m = m;
    cfg.num_jobs = 2000;
    const auto inst = workload::make_lower_bound_instance(cfg);

    sched::FifoScheduler fifo;
    const double fifo_flow = fifo.run(inst, {m, 1.0}).max_flow;

    sched::WorkStealingScheduler ws1(0, 2024);
    sched::WorkStealingScheduler ws2(0, 2024);
    const double f1 = ws1.run(inst, {m, 1.0}).max_flow;
    const double f2 = ws2.run(inst, {m, 2.0}).max_flow;

    table.add_row({metrics::Table::cell(std::uint64_t{m}),
                   metrics::Table::cell(std::uint64_t{std::max(1u, m / 10)}),
                   metrics::Table::cell(workload::lower_bound_opt_flow()),
                   metrics::Table::cell(fifo_flow), metrics::Table::cell(f1),
                   metrics::Table::cell(f2),
                   metrics::Table::cell(f1 / workload::lower_bound_opt_flow())});
  }
  table.print(std::cout);
  return 0;
}
