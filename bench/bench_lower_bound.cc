// Empirical companion to Lemma 5.1: work stealing is Omega(log n)-
// competitive even with constant speed augmentation.
//
// The adversarial instance (src/workload/lower_bound_instance.h) releases
// star jobs (1 root + m/10 children, all unit work) every 2m steps on
// m = log2(n) processors.  OPT finishes each job in 2 time units; under
// randomized stealing some jobs execute (nearly) sequentially, so the max
// flow grows linearly in m — i.e. logarithmically in the n = 2^Theta(m)
// the proof envisions.  The suite sweeps m and reports max flow under
// admit-first at speeds 1 and 2 (speed augmentation does not rescue the
// ratio's growth) as counters, against OPT's constant 2 and the
// centralized FIFO, which also achieves 2.
//
// google-benchmark form: the adversarial instance is generated once per
// benchmark registration, *outside* the timing loop, so the reported time
// is the simulation alone — previously generation ran inline with the
// measured sweep and dominated the small-m points.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>

#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/workload/lower_bound_instance.h"

namespace {

using namespace pjsched;

const core::Instance& lower_bound_instance(unsigned m) {
  // One instance per m for the life of the process: every benchmark (and
  // every iteration) measures against the identical adversarial workload.
  static std::map<unsigned, core::Instance> cache;
  auto it = cache.find(m);
  if (it == cache.end()) {
    workload::LowerBoundConfig cfg;
    cfg.m = m;
    cfg.num_jobs = 2000;
    it = cache.emplace(m, workload::make_lower_bound_instance(cfg)).first;
  }
  return it->second;
}

void BM_LowerBoundWorkStealing(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::Instance& inst = lower_bound_instance(m);
  double f1 = 0.0, f2 = 0.0;
  for (auto _ : state) {
    sched::WorkStealingScheduler ws1(0, 2024);
    sched::WorkStealingScheduler ws2(0, 2024);
    f1 = ws1.run(inst, {m, 1.0}).max_flow;
    f2 = ws2.run(inst, {m, 2.0}).max_flow;
    benchmark::DoNotOptimize(f1);
    benchmark::DoNotOptimize(f2);
  }
  state.counters["ws_flow_speed1"] = f1;
  state.counters["ws_flow_speed2"] = f2;
  state.counters["opt_flow"] = workload::lower_bound_opt_flow();
  state.counters["ws1_over_opt"] = f1 / workload::lower_bound_opt_flow();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_LowerBoundWorkStealing)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

void BM_LowerBoundFifo(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::Instance& inst = lower_bound_instance(m);
  double flow = 0.0;
  for (auto _ : state) {
    sched::FifoScheduler fifo;
    flow = fifo.run(inst, {m, 1.0}).max_flow;
    benchmark::DoNotOptimize(flow);
  }
  state.counters["fifo_flow"] = flow;
  state.counters["opt_flow"] = workload::lower_bound_opt_flow();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_LowerBoundFifo)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench/gbench_main.h"
