// Service-layer ingest micro-benchmarks: jobs/sec through the tenant
// router's admission path at each degradation-ladder rung, with 1000
// active tenants spread across the shards.
//
// The ladder is escalated by real tick() samples against a pre-filled
// backlog whose utilization sits in the target rung's band; no further
// ticks run during measurement, so the rung is frozen and each iteration
// measures exactly the ingest path of that rung (rung check + weighted
// fair admission, plus the drop-at-door shed path where the rung sheds).
// Iterations pair every admitted push with a pop, so depth — and with it
// the measured code path — stays constant for the whole run.
//
//   bench_service --benchmark_filter=Service
//
// The bench_baseline target distills BM_Service* into the `service`
// section of BENCH_sim.json (tools/make_bench_baseline.py --service).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/service/record.h"
#include "src/service/tenant_router.h"

namespace {

using namespace pjsched::service;  // NOLINT

constexpr std::size_t kTenants = 1000;
constexpr std::size_t kShards = 8;
constexpr std::size_t kCapacity = 8192;

const std::vector<std::string>& tenant_names() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>;
    v->reserve(kTenants);
    for (std::size_t i = 0; i < kTenants; ++i)
      v->push_back("tenant-" + std::to_string(i));
    return v;
  }();
  return *names;
}

JobRecord make_record(const std::string& tenant) {
  JobRecord r;
  r.tenant = tenant;
  r.work = 4.0;
  return r;
}

/// Pre-fills the router round-robin to `utilization` and escalates the
/// ladder onto the rung that utilization indicates (ticks stop before
/// measurement, freezing the rung).
std::unique_ptr<TenantRouter> router_at_utilization(double utilization,
                                                    Rung expected) {
  RouterConfig config;
  config.shards = kShards;
  config.capacity = kCapacity;
  auto router = std::make_unique<TenantRouter>(config);
  const auto& names = tenant_names();
  std::vector<ShedRecord> evictions;
  ShedReason reason{};
  const auto target = static_cast<std::size_t>(utilization * kCapacity);
  for (std::size_t i = 0; router->depth() < target; ++i)
    router->push(make_record(names[i % names.size()]), &evictions, &reason);
  // up_hold samples at the target utilization escalate straight to the
  // indicated rung (LadderConfig defaults: up_hold = 2).
  for (int i = 0; i < 2; ++i) router->tick(/*stalled=*/false, &evictions);
  if (router->rung() != expected) {
    // Loud setup failure: the numbers would be labeled with the wrong rung.
    throw std::runtime_error(std::string("bench_service: expected rung ") +
                             to_string(expected) + ", got " +
                             to_string(router->rung()));
  }
  return router;
}

/// Ingest throughput at a frozen ladder rung (arg 0..3 = normal .. reject-
/// tenant).  Every admitted push is paired with a pop so depth holds.
void BM_ServiceIngest(benchmark::State& state) {
  static constexpr double kUtilization[] = {0.30, 0.75, 0.88, 0.97};
  const auto rung = static_cast<Rung>(state.range(0));
  auto router = router_at_utilization(
      kUtilization[static_cast<std::size_t>(state.range(0))], rung);
  const auto& names = tenant_names();
  std::vector<ShedRecord> evictions;
  ShedReason reason{};
  QueuedRecord out;
  std::size_t i = 0;
  for (auto _ : state) {
    const PushOutcome outcome =
        router->push(make_record(names[i++ % names.size()]), &evictions,
                     &reason);
    evictions.clear();
    if (outcome == PushOutcome::kAdmitted) {
      router->try_pop(&out);
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(to_string(rung));
}
BENCHMARK(BM_ServiceIngest)->DenseRange(0, 3);

/// The pure drop-at-door path: a flooding tenant far over its share pushes
/// into the shed-new rung; every record is shed at ingest (the daemon's
/// cheapest overload response, so its cost bounds shed throughput).
void BM_ServiceShedAtDoor(benchmark::State& state) {
  auto router = router_at_utilization(0.75, Rung::kShedNew);
  // Push the flooder over its fair share so shed-new drops it at the door.
  std::vector<ShedRecord> evictions;
  ShedReason reason{};
  for (int i = 0; i < 64; ++i) {
    router->push(make_record("flood"), &evictions, &reason);
    evictions.clear();
  }
  for (auto _ : state) {
    const PushOutcome outcome =
        router->push(make_record("flood"), &evictions, &reason);
    evictions.clear();
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceShedAtDoor);

/// Wire-format parse cost (the per-line floor of socket ingest).
void BM_ServiceParseRecord(benchmark::State& state) {
  const std::string line =
      "job tenant-42 16.5 fanout=8 weight=2 deadline_ms=500 id=12345";
  JobRecord record;
  std::string error;
  for (auto _ : state) {
    const ParseStatus status = parse_record(line, &record, &error);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(record);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceParseRecord);

}  // namespace

#include "bench/gbench_main.h"
