// Shared main() for the google-benchmark binaries: the BENCHMARK_MAIN()
// body plus a `pjsched_build_type` context entry carrying the build type of
// *our* code (CMAKE_BUILD_TYPE, injected as PJSCHED_BUILD_TYPE by
// bench/benches.cmake).  google-benchmark's own `library_build_type`
// context key describes how the system libbenchmark was compiled — often
// debug for distro packages — and says nothing about the code under test;
// tools/make_bench_baseline.py prefers this key when deciding whether a
// snapshot came from an optimized build.
//
// Include from exactly one translation unit per binary, instead of
// BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

// Memory probes (peak RSS, allocation counting) for any bench that wants
// them; the scaling suite's counters come from here.  Defining
// PJSCHED_ENABLE_ALLOC_PROBE before this include arms the operator-new
// counter for the whole binary.
#include "bench/rss_probe.h"

#ifndef PJSCHED_BUILD_TYPE
#define PJSCHED_BUILD_TYPE ""
#endif

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* build_type = PJSCHED_BUILD_TYPE;
  benchmark::AddCustomContext("pjsched_build_type",
                              *build_type != '\0' ? build_type
                                                  : "unspecified");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
