// Empirical companion to Theorem 4.1 / Corollaries 4.2-4.3: steal-k-first
// with (k+1+eps) speed has max flow O((1/eps^2) * max{OPT, ln n}) w.h.p.
//
// Two sweeps:
//   1. admit-first (k = 0) with speed 1+eps over eps: the measured
//      max-flow-to-bound ratio must shrink as eps grows and sit far below
//      the analysis's 65/eps^2 * (OPT + ln n) ceiling;
//   2. steal-k-first at its theorem speed k+1+eps over k: the flow bound
//      holds for every k (the speed requirement is what grows).
#include <cmath>
#include <iostream>

#include "src/core/bounds.h"
#include "src/metrics/table.h"
#include "src/sched/work_stealing.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;

  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = 5000;
  gen.qps = 1200.0;  // high utilization on m = 16
  gen.seed = 23;
  const auto inst = workload::generate_instance(dist, gen);
  const unsigned m = 16;
  const double opt_lb = core::combined_lower_bound(inst, m);
  const double ln_n = std::log(static_cast<double>(inst.size()));
  const double bound_base = std::max(opt_lb, ln_n);

  std::cout << "# Theorem 4.1 shape on Bing @ QPS 1200, m=16, n="
            << inst.size() << "; OPT lower bound = " << opt_lb
            << " units, ln n = " << ln_n << "\n";

  std::cout << "\n# sweep 1: admit-first (k=0), speed 1+eps (Corollary 4.3)\n";
  metrics::Table t1({"eps", "speed", "max_flow", "flow_over_maxOPTlnN",
                     "theory_65_over_eps2"});
  for (double eps : {0.25, 0.5, 1.0, 2.0}) {
    sched::WorkStealingScheduler ws(0, 31);
    const auto res = ws.run(inst, {m, 1.0 + eps});
    t1.add_row({metrics::Table::cell(eps), metrics::Table::cell(1.0 + eps),
                metrics::Table::cell(res.max_flow),
                metrics::Table::cell(res.max_flow / bound_base),
                metrics::Table::cell(65.0 / (eps * eps))});
  }
  t1.print(std::cout);

  std::cout << "\n# sweep 2: steal-k-first at theorem speed k+1+eps "
               "(eps = 0.5)\n";
  metrics::Table t2(
      {"k", "speed", "max_flow", "flow_over_maxOPTlnN", "steals", "successes"});
  const double eps = 0.5;
  for (unsigned k : {0u, 1u, 2u, 4u, 8u, 16u}) {
    sched::WorkStealingScheduler ws(k, 37);
    const auto res = ws.run(inst, {m, k + 1.0 + eps});
    t2.add_row({metrics::Table::cell(std::uint64_t{k}),
                metrics::Table::cell(k + 1.0 + eps),
                metrics::Table::cell(res.max_flow),
                metrics::Table::cell(res.max_flow / bound_base),
                metrics::Table::cell(res.stats.steal_attempts),
                metrics::Table::cell(res.stats.successful_steals)});
  }
  t2.print(std::cout);
  return 0;
}
