// Shared driver for the three Figure-2 reproduction benches.
//
// The paper's Figure 2 plots, for each workload (Bing / finance /
// log-normal) and each QPS operating point (low/medium/high utilization on
// m = 16 processors), the maximum flow time achieved by the simulated OPT
// lower bound, steal-k-first (k = 16), and admit-first.  Each bench binary
// prints that exact series as a table (plus FIFO for reference, which the
// paper discusses as the idealized policy work stealing approximates).
//
// Expected shape (paper Section 6): OPT <= steal-16-first <= admit-first,
// with the admit-first gap widening as utilization grows.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/experiment.h"

namespace pjsched::benchfig2 {

struct Args {
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  bool csv = false;
};

/// Parses "--jobs=N", "--seed=S", "--csv" from argv; anything else is
/// rejected with a usage message.
inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<std::size_t>(std::stoull(arg.substr(7)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(arg.substr(7));
    } else if (arg == "--csv") {
      args.csv = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs=N] [--seed=S] [--csv]\n";
      std::exit(2);
    }
  }
  return args;
}

inline void run_fig2(const workload::WorkDistribution& dist,
                     std::vector<double> qps_values, const Args& args,
                     const char* figure_label) {
  core::ExperimentConfig cfg;
  cfg.processors = 16;  // the paper's dual 8-core Xeon testbed
  cfg.num_jobs = args.jobs;
  // One work unit = 10 microseconds.  This matters for work stealing: a
  // steal attempt costs one step, and real TBB steals cost microseconds,
  // so the simulated steal/work cost ratio must match reality for the
  // empirical comparison (the paper notes the k steal attempts per
  // admission are "negligible in practice").
  cfg.units_per_ms = 100.0;
  cfg.qps_values = std::move(qps_values);
  cfg.seed = args.seed;

  core::SchedulerSpec opt;
  opt.kind = core::SchedulerKind::kOptBound;
  core::SchedulerSpec steal16;
  steal16.kind = core::SchedulerKind::kStealKFirst;
  steal16.steal_k = 16;  // the paper's empirical k
  steal16.seed = args.seed;
  core::SchedulerSpec admit;
  admit.kind = core::SchedulerKind::kAdmitFirst;
  admit.seed = args.seed;
  core::SchedulerSpec fifo;
  fifo.kind = core::SchedulerKind::kFifo;
  cfg.schedulers = {opt, steal16, admit, fifo};

  std::cout << "# " << figure_label << " — workload '" << dist.name()
            << "', m=" << cfg.processors << ", jobs=" << cfg.num_jobs
            << ", seed=" << cfg.seed << "\n"
            << "# paper shape: OPT <= steal-16-first <= admit-first; "
               "gap widens with load\n";
  const auto rows = core::run_experiment(dist, cfg);
  const auto table = core::rows_to_table(rows);
  if (args.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

}  // namespace pjsched::benchfig2
