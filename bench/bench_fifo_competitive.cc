// Empirical companion to Theorem 3.1: FIFO with (1+eps) speed is
// O(1/eps)-competitive for maximum unweighted flow time.
//
// Sweeps eps on two instance families and reports FIFO's max flow against
// the OPT lower bound together with the theorem's 3/eps ceiling.  The
// measured ratio is computed against a *lower bound* on OPT, so it may
// exceed what the true-OPT ratio would be; the shape to verify is that the
// ratio (i) falls as eps grows and (ii) stays far below 3/eps on realistic
// load, and that at eps ~ 0 (speed 1) FIFO merely keeps pace under
// overload.
#include <iostream>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/metrics/table.h"
#include "src/sched/fifo.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

// Overloaded burst: wide jobs arriving faster than a 1-speed machine can
// drain, so speed augmentation is what keeps the backlog bounded — the
// regime Theorem 3.1 is about.
core::Instance burst_instance() {
  core::Instance inst;
  for (int i = 0; i < 400; ++i) {
    core::JobSpec job;
    job.arrival = static_cast<core::Time>(i) * 7.0;  // load = 82/(7*8) ~ 1.46
    job.graph = dag::parallel_for_dag(16, 5);        // W = 82, P = 7
    inst.jobs.push_back(std::move(job));
  }
  return inst;
}

void sweep(const core::Instance& inst, unsigned m, const char* label) {
  std::cout << "# " << label << " (m=" << m << ")\n";
  metrics::Table table({"eps", "speed", "fifo_max_flow", "opt_lower_bound",
                        "ratio", "theory_3_over_eps"});
  const double lb = core::combined_lower_bound(inst, m);
  sched::FifoScheduler fifo;
  for (double eps : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    const auto res = fifo.run(inst, {m, 1.0 + eps});
    table.add_row({metrics::Table::cell(eps),
                   metrics::Table::cell(1.0 + eps),
                   metrics::Table::cell(res.max_flow),
                   metrics::Table::cell(lb),
                   metrics::Table::cell(res.max_flow / lb),
                   metrics::Table::cell(3.0 / eps)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace pjsched;

  sweep(burst_instance(), 8, "Theorem 3.1 shape: overloaded burst of wide jobs");

  // Realistic operating point: Bing workload at high utilization.
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = 5000;
  gen.qps = 1200.0;
  gen.seed = 17;
  const auto inst = workload::generate_instance(dist, gen);
  sweep(inst, 16, "Theorem 3.1 shape: Bing workload at QPS 1200");
  return 0;
}
