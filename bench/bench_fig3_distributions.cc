// Reproduces Figure 3: the per-request total-work distributions of the
// Bing web-search workload (3a) and the option-pricing finance workload
// (3b), printed as probability histograms — exactly the presentation of
// the paper's figure — plus an empirical-sample cross-check and the
// synthetic log-normal workload's histogram for completeness.
#include <iostream>
#include <map>

#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/sim/rng.h"
#include "src/workload/distributions.h"

namespace {

using namespace pjsched;

void print_discrete(const workload::DiscreteWorkDistribution& dist,
                    const char* label) {
  std::cout << "# " << label << " — request total-work distribution '"
            << dist.name() << "', mean " << dist.mean_ms() << " ms\n";
  // Empirical check: 200k samples against the analytic pmf.
  sim::Rng rng(7);
  std::map<double, std::size_t> counts;
  constexpr std::size_t kSamples = 200000;
  for (std::size_t i = 0; i < kSamples; ++i) ++counts[dist.sample_ms(rng)];

  metrics::Table table({"work_ms", "probability", "empirical", "bar"});
  for (std::size_t b = 0; b < dist.bins().size(); ++b) {
    const double p = dist.pmf()[b];
    const double emp =
        static_cast<double>(counts[dist.bins()[b].work_ms]) / kSamples;
    table.add_row({metrics::Table::cell(dist.bins()[b].work_ms),
                   metrics::Table::cell(p), metrics::Table::cell(emp),
                   std::string(static_cast<std::size_t>(p * 60.0), '#')});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_lognormal() {
  const auto dist = workload::default_lognormal_distribution();
  std::cout << "# synthetic log-normal workload, mean " << dist.mean_ms()
            << " ms (histogram over [0, 60) ms, 12 bins)\n";
  sim::Rng rng(11);
  metrics::Histogram hist(0.0, 60.0, 12);
  constexpr std::size_t kSamples = 200000;
  for (std::size_t i = 0; i < kSamples; ++i) hist.add(dist.sample_ms(rng));
  metrics::Table table({"bin_center_ms", "fraction", "bar"});
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const double f = hist.fraction(b);
    table.add_row({metrics::Table::cell(hist.bin_center(b)),
                   metrics::Table::cell(f),
                   std::string(static_cast<std::size_t>(f * 60.0), '#')});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  print_discrete(workload::bing_distribution(),
                 "Figure 3(a): Bing search server");
  print_discrete(workload::finance_distribution(),
                 "Figure 3(b): finance server");
  print_lognormal();
  return 0;
}
