// Reproduces Figure 2(a): max flow time on the Bing web-search workload at
// QPS 800 / 1000 / 1200 under simulated OPT, steal-16-first, admit-first
// (and FIFO for reference).
#include "bench/fig2_common.h"

int main(int argc, char** argv) {
  using namespace pjsched;
  const auto args = benchfig2::parse_args(argc, argv);
  const auto dist = workload::bing_distribution();
  benchfig2::run_fig2(dist, {800.0, 1000.0, 1200.0}, args, "Figure 2(a)");
  return 0;
}
