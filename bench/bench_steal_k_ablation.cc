// Ablation over the steal-k-first parameter k (paper Section 4 discussion
// and Section 6): at equal speed, larger k makes work stealing behave more
// like FIFO — free workers parallelize already-admitted jobs before
// admitting new ones — which lowers max flow time under load, with
// diminishing returns once k reaches the order of m.
//
// The paper's empirical choice is k = 16 on m = 16.  Expected shape: max
// flow falls from k = 0 (admit-first) as k grows toward ~m, then flattens;
// the effect is strongest at high utilization.
#include <iostream>

#include "src/metrics/table.h"
#include "src/sched/fifo.h"
#include "src/sched/opt_bound.h"
#include "src/sched/work_stealing.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;
  const unsigned m = 16;
  const auto dist = workload::bing_distribution();

  for (double qps : {800.0, 1200.0}) {
    workload::GeneratorConfig gen;
    gen.num_jobs = 10000;
    gen.qps = qps;
    gen.units_per_ms = 100.0;  // 10 us/unit: realistic steal/work cost ratio
    gen.seed = 97;
    const auto inst = workload::generate_instance(dist, gen);

    sched::OptLowerBound opt;
    const double opt_flow = opt.run(inst, {m, 1.0}).max_flow;
    sched::FifoScheduler fifo;
    const double fifo_flow = fifo.run(inst, {m, 1.0}).max_flow;

    std::cout << "# Bing @ QPS " << qps << " (util "
              << workload::utilization(dist, qps, m)
              << "), m=16, speed 1; OPT bound " << opt_flow / gen.units_per_ms
              << " ms, FIFO " << fifo_flow / gen.units_per_ms << " ms\n";
    metrics::Table table({"scheduler", "max_flow_ms", "ratio_to_opt",
                          "steal_attempts", "successful_steals"});
    for (unsigned k : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      sched::WorkStealingScheduler ws(k, 55);
      const auto res = ws.run(inst, {m, 1.0});
      table.add_row({res.scheduler_name,
                     metrics::Table::cell(res.max_flow / gen.units_per_ms),
                     metrics::Table::cell(res.max_flow / opt_flow),
                     metrics::Table::cell(res.stats.steal_attempts),
                     metrics::Table::cell(res.stats.successful_steals)});
    }
    // Steal-half ablation rows (extension): batch steals at k in {0, 16}.
    for (unsigned k : {0u, 16u}) {
      sched::WorkStealingScheduler ws(k, 55, false, true);
      const auto res = ws.run(inst, {m, 1.0});
      table.add_row({res.scheduler_name,
                     metrics::Table::cell(res.max_flow / gen.units_per_ms),
                     metrics::Table::cell(res.max_flow / opt_flow),
                     metrics::Table::cell(res.stats.steal_attempts),
                     metrics::Table::cell(res.stats.successful_steals)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
