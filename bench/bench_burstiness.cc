// Extension experiment: arrival burstiness and maximum flow time.
//
// The paper's evaluation uses Poisson arrivals; production traffic is
// burstier.  This bench holds the *average* rate fixed and sweeps the
// burst/calm split of a Markov-modulated Poisson process, reporting max
// flow, p99, and the tightest 0.1%-miss SLO each scheduler could promise.
// Expected shape: burstiness inflates every scheduler's max flow, but the
// FIFO-like policies (FIFO, steal-16-first) degrade most gracefully, and
// admit-first's sequential-execution pathology is amplified.
#include <algorithm>
#include <iostream>

#include "src/core/run.h"
#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/workload/arrivals.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;
  const unsigned m = 16;
  const auto dist = workload::bing_distribution();
  const double avg_qps = 1000.0;
  const std::size_t jobs = 10000;

  struct Shape {
    const char* label;
    double burst_factor;  // burst rate = avg * f, calm = avg * (2 - f)
  };
  for (const Shape& shape : {Shape{"poisson (no bursts)", 1.0},
                             Shape{"mild bursts (1.5x/0.5x)", 1.5},
                             Shape{"heavy bursts (1.8x/0.2x)", 1.8}}) {
    // Build the arrival times at the same average rate.
    std::vector<double> arrivals_ms;
    if (shape.burst_factor == 1.0) {
      workload::PoissonArrivals arr(avg_qps, sim::Rng(61));
      arrivals_ms = workload::take_arrivals(arr, jobs);
    } else {
      workload::MmppArrivals arr(avg_qps * shape.burst_factor,
                                 avg_qps * (2.0 - shape.burst_factor),
                                 /*mean_sojourn_ms=*/250.0, sim::Rng(61));
      arrivals_ms = workload::take_arrivals(arr, jobs);
    }
    workload::GeneratorConfig gen;
    gen.units_per_ms = 100.0;
    gen.seed = 71;
    const auto inst =
        workload::generate_instance_with_arrivals(dist, gen, arrivals_ms);

    std::cout << "# " << shape.label << " @ avg " << avg_qps
              << " QPS, m=16, speed 1\n";
    metrics::Table table(
        {"scheduler", "max_flow_ms", "p99_ms", "slo_p999_ms"});
    for (const char* name : {"opt", "fifo", "steal-16-first", "admit-first"}) {
      auto spec = core::parse_scheduler(name);
      spec.seed = 13;
      const auto res = core::run_scheduler(inst, spec, {m, 1.0});
      const double slo = metrics::tightest_slo(res.flow, 0.001);
      std::vector<double> sorted = res.flow;
      std::sort(sorted.begin(), sorted.end());
      table.add_row(
          {res.scheduler_name,
           metrics::Table::cell(res.max_flow / gen.units_per_ms),
           metrics::Table::cell(metrics::quantile_sorted(sorted, 0.99) /
                                gen.units_per_ms),
           metrics::Table::cell(slo / gen.units_per_ms)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
