// Micro-benchmarks (google-benchmark) for the simulation substrate: RNG
// throughput, event-engine decision rate, and step-engine worker-step rate.
// These establish that the Figure-2 experiments (millions of simulated
// steps) run in seconds, and catch performance regressions in the engines.
//
// The BM_Baseline* group is the perf-snapshot suite: the `bench_baseline`
// CMake target runs it with --benchmark_filter=Baseline in JSON mode and
// tools/make_bench_baseline.py distills the result into BENCH_sim.json
// (steps/sec, trials/sec, wall time) so future PRs have a trajectory to
// compare against.
#include <benchmark/benchmark.h>

#include "src/core/multi_trial.h"
#include "src/dag/builders.h"
#include "src/runtime/parallel_trials.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/sim/rng.h"
#include "src/sim/step_engine.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(15));
}
BENCHMARK(BM_RngUniformInt);

core::Instance bench_instance(std::size_t jobs, double qps = 1000.0) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = jobs;
  gen.qps = qps;
  gen.seed = 5;
  return workload::generate_instance(dist, gen);
}

void BM_EventEngineFifo(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  sched::FifoScheduler fifo;
  for (auto _ : state) {
    auto res = fifo.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngineFifo)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StepEngineAdmitFirst(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(0, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StepEngineAdmitFirst)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_StepEngineStealK(benchmark::State& state) {
  const auto inst = bench_instance(2000);
  const auto k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(k, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
}
BENCHMARK(BM_StepEngineStealK)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// --- BENCH_sim.json baseline suite --------------------------------------

// Coarse-node all-busy workload: 48 parallel-for jobs of 32 grains x 2000
// work units (~3.07M worker-steps), arrivals packed so a 16-worker machine
// stays saturated — the work-quantum fast path's best case, and exactly the
// regime the Figure-2 sweeps spend most of their simulated time in.
core::Instance coarse_all_busy_instance() {
  core::Instance inst;
  for (std::size_t i = 0; i < 48; ++i) {
    core::JobSpec spec;
    spec.arrival = 10.0 * static_cast<double>(i);
    spec.graph = dag::parallel_for_dag(32, 2000);
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

void run_step_baseline(benchmark::State& state, bool exact_steps) {
  const auto inst = coarse_all_busy_instance();
  sim::StepEngineOptions opt;
  opt.machine = {16, 1.0};
  opt.steal_k = 4;
  opt.seed = 7;
  opt.exact_steps = exact_steps;
  for (auto _ : state) {
    auto res = sim::run_step_engine(inst, opt);
    benchmark::DoNotOptimize(res.max_flow);
  }
  // items/sec = simulated worker-steps per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.total_work()));
}

void BM_BaselineStepEngineFast(benchmark::State& state) {
  run_step_baseline(state, /*exact_steps=*/false);
}
BENCHMARK(BM_BaselineStepEngineFast)->Unit(benchmark::kMillisecond);

void BM_BaselineStepEngineExact(benchmark::State& state) {
  run_step_baseline(state, /*exact_steps=*/true);
}
BENCHMARK(BM_BaselineStepEngineExact)->Unit(benchmark::kMillisecond);

// Figure-2-scale event-engine workload: 2000 bing-distribution jobs arriving
// at 4000 qps on a 16-processor machine — a backlogged regime, so the active
// set is large and the exact path's per-slice rebuild + policy sort dominate.
// Fast vs exact isolates the virtual-work-clock path (incremental active
// set, completion heap, span traces) against the per-slice reference loop;
// the instance, policy, and results are bit-identical across the pair
// (tests/event_fast_path_test.cc).
void run_event_baseline(benchmark::State& state, bool exact_engine) {
  const auto inst = bench_instance(2000, 4000.0);
  sched::FifoScheduler fifo(exact_engine);
  std::int64_t decisions = 0;
  for (auto _ : state) {
    auto res = fifo.run(inst, {16, 1.0});
    decisions = static_cast<std::int64_t>(res.stats.decision_points);
    benchmark::DoNotOptimize(res.max_flow);
  }
  // items/sec = scheduling decision points per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          decisions);
}

void BM_BaselineEventEngineFast(benchmark::State& state) {
  run_event_baseline(state, /*exact_engine=*/false);
}
BENCHMARK(BM_BaselineEventEngineFast)->Unit(benchmark::kMillisecond);

void BM_BaselineEventEngineExact(benchmark::State& state) {
  run_event_baseline(state, /*exact_engine=*/true);
}
BENCHMARK(BM_BaselineEventEngineExact)->Unit(benchmark::kMillisecond);

core::TrialConfig baseline_trial_config() {
  core::TrialConfig cfg;
  cfg.trials = 16;
  cfg.generator.num_jobs = 300;
  cfg.generator.qps = 1000.0;
  cfg.generator.seed = 5;
  cfg.machine = {8, 1.0};
  cfg.scheduler.kind = core::SchedulerKind::kAdmitFirst;
  cfg.scheduler.seed = 3;
  return cfg;
}

void BM_BaselineTrialsSequential(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto cfg = baseline_trial_config();
  for (auto _ : state) {
    auto out = core::run_trials(dist, cfg);
    benchmark::DoNotOptimize(out.max_flow.mean);
  }
  // items/sec = trials per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK(BM_BaselineTrialsSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BaselineTrialsParallel(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto cfg = baseline_trial_config();
  for (auto _ : state) {
    auto out = runtime::run_trials_parallel(dist, cfg);
    benchmark::DoNotOptimize(out.max_flow.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
// UseRealTime: the work runs on pool threads, so main-thread CPU time
// would wildly overstate trials/sec; wall clock is the honest measure.
BENCHMARK(BM_BaselineTrialsParallel)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_InstanceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto inst = bench_instance(2000);
    benchmark::DoNotOptimize(inst.jobs.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_InstanceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench/gbench_main.h"
