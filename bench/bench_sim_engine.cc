// Micro-benchmarks (google-benchmark) for the simulation substrate: RNG
// throughput, event-engine decision rate, and step-engine worker-step rate.
// These establish that the Figure-2 experiments (millions of simulated
// steps) run in seconds, and catch performance regressions in the engines.
//
// The BM_Baseline* group is the perf-snapshot suite: the `bench_baseline`
// CMake target runs it with --benchmark_filter=Baseline in JSON mode and
// tools/make_bench_baseline.py distills the result into BENCH_sim.json
// (steps/sec, trials/sec, wall time) so future PRs have a trajectory to
// compare against.
// Arm the global operator-new counter for this binary: the scaling suite
// asserts that streamed runs allocate O(1) per job (no per-slice or
// per-decision allocations in steady state).
#define PJSCHED_ENABLE_ALLOC_PROBE
#include "bench/rss_probe.h"

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "src/core/bounds.h"
#include "src/core/multi_trial.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/runtime/parallel_trials.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/sim/packed_dag.h"
#include "src/sim/rng.h"
#include "src/sim/step_engine.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "src/workload/streaming_source.h"

namespace {

using namespace pjsched;

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(15));
}
BENCHMARK(BM_RngUniformInt);

core::Instance bench_instance(std::size_t jobs, double qps = 1000.0) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = jobs;
  gen.qps = qps;
  gen.seed = 5;
  return workload::generate_instance(dist, gen);
}

void BM_EventEngineFifo(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  sched::FifoScheduler fifo;
  for (auto _ : state) {
    auto res = fifo.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngineFifo)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StepEngineAdmitFirst(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(0, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StepEngineAdmitFirst)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_StepEngineStealK(benchmark::State& state) {
  const auto inst = bench_instance(2000);
  const auto k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(k, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
}
BENCHMARK(BM_StepEngineStealK)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// --- BENCH_sim.json baseline suite --------------------------------------

// Coarse-node all-busy workload: 48 parallel-for jobs of 32 grains x 2000
// work units (~3.07M worker-steps), arrivals packed so a 16-worker machine
// stays saturated — the work-quantum fast path's best case, and exactly the
// regime the Figure-2 sweeps spend most of their simulated time in.
core::Instance coarse_all_busy_instance() {
  core::Instance inst;
  for (std::size_t i = 0; i < 48; ++i) {
    core::JobSpec spec;
    spec.arrival = 10.0 * static_cast<double>(i);
    spec.graph = dag::parallel_for_dag(32, 2000);
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

void run_step_baseline(benchmark::State& state, bool exact_steps) {
  const auto inst = coarse_all_busy_instance();
  sim::StepEngineOptions opt;
  opt.machine = {16, 1.0};
  opt.steal_k = 4;
  opt.seed = 7;
  opt.exact_steps = exact_steps;
  for (auto _ : state) {
    auto res = sim::run_step_engine(inst, opt);
    benchmark::DoNotOptimize(res.max_flow);
  }
  // items/sec = simulated worker-steps per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.total_work()));
}

void BM_BaselineStepEngineFast(benchmark::State& state) {
  run_step_baseline(state, /*exact_steps=*/false);
}
BENCHMARK(BM_BaselineStepEngineFast)->Unit(benchmark::kMillisecond);

void BM_BaselineStepEngineExact(benchmark::State& state) {
  run_step_baseline(state, /*exact_steps=*/true);
}
BENCHMARK(BM_BaselineStepEngineExact)->Unit(benchmark::kMillisecond);

// Figure-2-scale event-engine workload: 2000 bing-distribution jobs arriving
// at 4000 qps on a 16-processor machine — a backlogged regime, so the active
// set is large and the exact path's per-slice rebuild + policy sort dominate.
// Fast vs exact isolates the virtual-work-clock path (incremental active
// set, completion heap, span traces) against the per-slice reference loop;
// the instance, policy, and results are bit-identical across the pair
// (tests/event_fast_path_test.cc).
void run_event_baseline(benchmark::State& state, bool exact_engine) {
  const auto inst = bench_instance(2000, 4000.0);
  sched::FifoScheduler fifo(exact_engine);
  std::int64_t decisions = 0;
  for (auto _ : state) {
    auto res = fifo.run(inst, {16, 1.0});
    decisions = static_cast<std::int64_t>(res.stats.decision_points);
    benchmark::DoNotOptimize(res.max_flow);
  }
  // items/sec = scheduling decision points per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          decisions);
}

void BM_BaselineEventEngineFast(benchmark::State& state) {
  run_event_baseline(state, /*exact_engine=*/false);
}
BENCHMARK(BM_BaselineEventEngineFast)->Unit(benchmark::kMillisecond);

void BM_BaselineEventEngineExact(benchmark::State& state) {
  run_event_baseline(state, /*exact_engine=*/true);
}
BENCHMARK(BM_BaselineEventEngineExact)->Unit(benchmark::kMillisecond);

core::TrialConfig baseline_trial_config() {
  core::TrialConfig cfg;
  cfg.trials = 16;
  cfg.generator.num_jobs = 300;
  cfg.generator.qps = 1000.0;
  cfg.generator.seed = 5;
  cfg.machine = {8, 1.0};
  cfg.scheduler.kind = core::SchedulerKind::kAdmitFirst;
  cfg.scheduler.seed = 3;
  return cfg;
}

void BM_BaselineTrialsSequential(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto cfg = baseline_trial_config();
  for (auto _ : state) {
    auto out = core::run_trials(dist, cfg);
    benchmark::DoNotOptimize(out.max_flow.mean);
  }
  // items/sec = trials per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK(BM_BaselineTrialsSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BaselineTrialsParallel(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto cfg = baseline_trial_config();
  for (auto _ : state) {
    auto out = runtime::run_trials_parallel(dist, cfg);
    benchmark::DoNotOptimize(out.max_flow.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
// UseRealTime: the work runs on pool threads, so main-thread CPU time
// would wildly overstate trials/sec; wall clock is the honest measure.
BENCHMARK(BM_BaselineTrialsParallel)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- PackedDag vs ReadyTracker inner loop (BENCH_sim.json `bounds`) -------
//
// The exact frontier drain the engines run per job, on the exact recycling
// pattern the arena uses: one tracker object re-bound across 256 generated
// bing DAGs per iteration, claim-head + complete until done.  The Packed
// variant is what the engines now execute (SoA slot layout, O(1) head
// claim); the Tracker variant is the pre-slot representation kept for the
// runtime executor.  make_bench_baseline.py turns the items/sec ratio into
// the recorded before/after speedup.

std::vector<dag::Dag> packed_bench_dags() {
  std::vector<dag::Dag> dags;
  core::Instance inst = bench_instance(256);
  dags.reserve(inst.jobs.size());
  for (core::JobSpec& job : inst.jobs) dags.push_back(std::move(job.graph));
  return dags;
}

std::int64_t total_nodes(const std::vector<dag::Dag>& dags) {
  std::int64_t nodes = 0;
  for (const dag::Dag& d : dags)
    nodes += static_cast<std::int64_t>(d.node_count());
  return nodes;
}

void BM_BaselinePackedDagInnerLoopPacked(benchmark::State& state) {
  const std::vector<dag::Dag> dags = packed_bench_dags();
  sim::PackedDag frontier;
  for (auto _ : state) {
    double work = 0.0;
    for (const dag::Dag& d : dags) {
      frontier.assign(d);
      while (!frontier.done()) {
        const dag::NodeId v = frontier.ready().front();
        frontier.claim(v);
        work += static_cast<double>(frontier.work_of(v));
        frontier.complete(v);
      }
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(state.iterations() * total_nodes(dags));
}
BENCHMARK(BM_BaselinePackedDagInnerLoopPacked)
    ->Unit(benchmark::kMicrosecond);

void BM_BaselinePackedDagInnerLoopTracker(benchmark::State& state) {
  const std::vector<dag::Dag> dags = packed_bench_dags();
  dag::ReadyTracker frontier;
  for (auto _ : state) {
    double work = 0.0;
    for (const dag::Dag& d : dags) {
      frontier.reset(d);
      while (!frontier.done()) {
        const dag::NodeId v = frontier.ready().front();
        frontier.claim(v);
        work += static_cast<double>(d.work_of(v));
        frontier.complete(v);
      }
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetItemsProcessed(state.iterations() * total_nodes(dags));
}
BENCHMARK(BM_BaselinePackedDagInnerLoopTracker)
    ->Unit(benchmark::kMicrosecond);

void BM_InstanceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto inst = bench_instance(2000);
    benchmark::DoNotOptimize(inst.jobs.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_InstanceGeneration)->Unit(benchmark::kMillisecond);

// --- Asymptotic scaling gate (BENCH_sim.json `scaling` section) -----------
//
// One decade curve per engine, 10^4 -> 10^6 jobs (10^7 behind
// PJSCHED_SCALING_XL=1), streaming the bing workload at 1000 qps on 16
// processors (utilization ~0.69: stable, so the live-job set is O(1) in the
// instance length).  Each point records jobs/sec, peak RSS, allocations per
// job, and the peak live-job count.  The memory claims in executable form:
//
//  * flat peak_rss_bytes and allocs_per_job across decades == O(live jobs)
//    resident state and zero steady-state (per-slice) allocations;
//  * the BM_Scaling*Materialized counterparts run the same instances through
//    the classic materialized path, and tools/make_bench_baseline.py turns
//    the RSS ratio at the largest common decade into the >= 10x headroom
//    acceptance number.
//
// Single iteration per point: the subject is the run's footprint, not
// per-iteration noise, and VmHWM is a per-process high-water mark that
// reset_peak_rss() rewinds between points.

constexpr std::size_t kScalingProcessors = 16;
// Hard per-job allocation ceiling for streamed runs.  A steady-state leak —
// any allocation per decision slice — would blow past this within one
// decade (the engines take ~35 slices/job on this workload).  Measured
// RelWithDebInfo baseline is ~32-34 allocs/job, flat across decades (DAG
// construction + arena map churn); the ceiling leaves room for
// allocator/libstdc++ variance without letting O(slices) growth through.
constexpr double kScalingAllocBudgetPerJob = 64.0;

workload::GeneratorConfig scaling_config(std::size_t jobs) {
  workload::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.qps = 1000.0;
  cfg.seed = 5;
  return cfg;
}

// FIFO for the event engine; admit-first (k = 0) for the step engine.
// Admit-first, not steal-16-first: k failed steals gate each admission, so
// at speed 1 a steal-16 worker pool admits slower than jobs arrive and the
// global queue grows linearly with the instance (the paper's Theorem 4.1
// needs (k+1+eps)-speed) — unusable for a bounded-live-set scaling curve.
// Admit-first is (1+eps)-speed (Corollary 4.3) and stable at u ~ 0.69.
core::SchedulerSpec scaling_scheduler(bool event_engine) {
  core::SchedulerSpec spec;
  if (event_engine) {
    spec.kind = core::SchedulerKind::kFifo;
  } else {
    spec.kind = core::SchedulerKind::kAdmitFirst;
    spec.seed = 7;
  }
  return spec;
}

void run_scaling_streamed(benchmark::State& state, bool event_engine) {
  const auto dist = workload::bing_distribution();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    benchprobe::reset_peak_rss();
    const std::uint64_t alloc_start = benchprobe::allocation_count();
    workload::GeneratedJobSource source(dist, scaling_config(jobs));
    const auto res = core::run_scheduler_streamed(
        source, scaling_scheduler(event_engine),
        {kScalingProcessors, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
    allocs = benchprobe::allocation_count() - alloc_start;
    state.counters["peak_rss_bytes"] = static_cast<double>(
        benchprobe::peak_rss_bytes());
    state.counters["allocs_per_job"] =
        static_cast<double>(allocs) / static_cast<double>(jobs);
    state.counters["peak_live_jobs"] =
        static_cast<double>(res.stats.peak_live_jobs);
    state.counters["arena_slots"] =
        static_cast<double>(res.stats.arena_slots);
    if (res.jobs != jobs) {
      state.SkipWithError("streamed run lost jobs");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  if (static_cast<double>(allocs) >
      kScalingAllocBudgetPerJob * static_cast<double>(jobs))
    state.SkipWithError("allocation budget exceeded: steady-state leak");
}

void run_scaling_materialized(benchmark::State& state, bool event_engine) {
  const auto dist = workload::bing_distribution();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchprobe::reset_peak_rss();
    const auto inst = workload::generate_instance(dist, scaling_config(jobs));
    const auto res = core::run_scheduler(inst, scaling_scheduler(event_engine),
                                         {kScalingProcessors, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
    state.counters["peak_rss_bytes"] = static_cast<double>(
        benchprobe::peak_rss_bytes());
    state.counters["peak_live_jobs"] =
        static_cast<double>(res.stats.peak_live_jobs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}

// Streamed lower bounds: one O(1)-state pass (no arena, no engine), so its
// curve is the floor the engine curves are compared against.  The alloc
// budget still applies — per-job DAG construction inside the source is the
// only allowed allocation source.
void run_scaling_bounds_streamed(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    benchprobe::reset_peak_rss();
    const std::uint64_t alloc_start = benchprobe::allocation_count();
    workload::GeneratedJobSource source(dist, scaling_config(jobs));
    const auto bounds =
        core::stream_lower_bounds(source, kScalingProcessors);
    benchmark::DoNotOptimize(bounds.combined);
    allocs = benchprobe::allocation_count() - alloc_start;
    state.counters["peak_rss_bytes"] = static_cast<double>(
        benchprobe::peak_rss_bytes());
    state.counters["allocs_per_job"] =
        static_cast<double>(allocs) / static_cast<double>(jobs);
    if (bounds.jobs != jobs) {
      state.SkipWithError("streamed bounds lost jobs");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  if (static_cast<double>(allocs) >
      kScalingAllocBudgetPerJob * static_cast<double>(jobs))
    state.SkipWithError("allocation budget exceeded: steady-state leak");
}

void run_scaling_bounds_materialized(benchmark::State& state) {
  const auto dist = workload::bing_distribution();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchprobe::reset_peak_rss();
    const auto inst = workload::generate_instance(dist, scaling_config(jobs));
    benchmark::DoNotOptimize(
        core::combined_lower_bound(inst, kScalingProcessors));
    benchmark::DoNotOptimize(
        core::weighted_combined_lower_bound(inst, kScalingProcessors));
    state.counters["peak_rss_bytes"] = static_cast<double>(
        benchprobe::peak_rss_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}

void BM_ScalingEventEngineStreamed(benchmark::State& state) {
  run_scaling_streamed(state, /*event_engine=*/true);
}
void BM_ScalingStepEngineStreamed(benchmark::State& state) {
  run_scaling_streamed(state, /*event_engine=*/false);
}
void BM_ScalingEventEngineMaterialized(benchmark::State& state) {
  run_scaling_materialized(state, /*event_engine=*/true);
}
void BM_ScalingStepEngineMaterialized(benchmark::State& state) {
  run_scaling_materialized(state, /*event_engine=*/false);
}
void BM_ScalingBoundsStreamed(benchmark::State& state) {
  run_scaling_bounds_streamed(state);
}
void BM_ScalingBoundsMaterialized(benchmark::State& state) {
  run_scaling_bounds_materialized(state);
}

void register_scaling(const char* name, void (*fn)(benchmark::State&),
                      bool xl_decade) {
  auto* b = benchmark::RegisterBenchmark(name, fn)
                ->Arg(10000)
                ->Arg(100000)
                ->Arg(1000000)
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
  if (xl_decade) b->Arg(10000000);
}

// Registration order matters for readability of --benchmark_filter=Scaling
// output only; the streamed/materialized pairing is by name.  The 10^7
// decade is opt-in (several GB materialized, minutes of wall time).
const int scaling_registered = [] {
  const char* xl_env = std::getenv("PJSCHED_SCALING_XL");
  const bool xl = xl_env != nullptr && *xl_env != '\0' && *xl_env != '0';
  register_scaling("BM_ScalingEventEngineStreamed",
                   BM_ScalingEventEngineStreamed, xl);
  register_scaling("BM_ScalingStepEngineStreamed",
                   BM_ScalingStepEngineStreamed, xl);
  register_scaling("BM_ScalingBoundsStreamed", BM_ScalingBoundsStreamed, xl);
  // Materialized comparison points last: the CI smoke filter selects the
  // streamed curves only; the full bench_baseline run includes these to
  // compute the streamed-vs-materialized RSS ratio.
  register_scaling("BM_ScalingEventEngineMaterialized",
                   BM_ScalingEventEngineMaterialized, /*xl_decade=*/false);
  register_scaling("BM_ScalingStepEngineMaterialized",
                   BM_ScalingStepEngineMaterialized, /*xl_decade=*/false);
  register_scaling("BM_ScalingBoundsMaterialized",
                   BM_ScalingBoundsMaterialized, /*xl_decade=*/false);
  return 0;
}();

}  // namespace

#include "bench/gbench_main.h"
