// Micro-benchmarks (google-benchmark) for the simulation substrate: RNG
// throughput, event-engine decision rate, and step-engine worker-step rate.
// These establish that the Figure-2 experiments (millions of simulated
// steps) run in seconds, and catch performance regressions in the engines.
#include <benchmark/benchmark.h>

#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/sim/rng.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(15));
}
BENCHMARK(BM_RngUniformInt);

core::Instance bench_instance(std::size_t jobs) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = jobs;
  gen.qps = 1000.0;
  gen.seed = 5;
  return workload::generate_instance(dist, gen);
}

void BM_EventEngineFifo(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  sched::FifoScheduler fifo;
  for (auto _ : state) {
    auto res = fifo.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngineFifo)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StepEngineAdmitFirst(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(0, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StepEngineAdmitFirst)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_StepEngineStealK(benchmark::State& state) {
  const auto inst = bench_instance(2000);
  const auto k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sched::WorkStealingScheduler ws(k, 7);
    auto res = ws.run(inst, {16, 1.0});
    benchmark::DoNotOptimize(res.max_flow);
  }
}
BENCHMARK(BM_StepEngineStealK)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_InstanceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto inst = bench_instance(2000);
    benchmark::DoNotOptimize(inst.jobs.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_InstanceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
