// Cross-objective comparison: maximum flow vs mean flow across every
// scheduler in the library, on a size-skewed workload.
//
// Motivates the paper's objective choice (Section 1 / related work):
// policies optimized for average latency (clairvoyant SJF, fair EQUI)
// sacrifice the tail, LIFO destroys it, and FIFO-like policies — the
// idealized FIFO and its practical steal-k-first approximation — own the
// max-flow column while staying competitive on the mean.
#include <algorithm>
#include <iostream>

#include "src/core/run.h"
#include "src/metrics/table.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;
  const unsigned m = 16;
  const auto dist = workload::bing_distribution();

  workload::GeneratorConfig gen;
  gen.num_jobs = 10000;
  gen.qps = 1100.0;
  gen.units_per_ms = 100.0;
  gen.seed = 404;
  const auto inst = workload::generate_instance(dist, gen);

  std::cout << "# Bing workload @ QPS 1100 (util "
            << workload::utilization(dist, 1100.0, m)
            << "), m=16, speed 1: the max-flow / mean-flow trade-off\n";
  metrics::Table table({"scheduler", "max_flow_ms", "mean_flow_ms",
                        "p99_flow_ms_proxy"});
  for (const char* name : {"opt", "fifo", "steal-16-first", "admit-first",
                           "equi", "sjf", "round-robin", "lifo"}) {
    auto spec = core::parse_scheduler(name);
    spec.seed = 11;
    const auto res = core::run_scheduler(inst, spec, {m, 1.0});
    // Cheap p99 proxy: sort flows.
    std::vector<double> flows = res.flow;
    std::sort(flows.begin(), flows.end());
    const double p99 = flows[flows.size() * 99 / 100];
    table.add_row({res.scheduler_name,
                   metrics::Table::cell(res.max_flow / gen.units_per_ms),
                   metrics::Table::cell(res.mean_flow / gen.units_per_ms),
                   metrics::Table::cell(p99 / gen.units_per_ms)});
  }
  table.print(std::cout);
  return 0;
}
