// Process-memory and allocation probes for the scaling benches.
//
//  * peak_rss_bytes() reads VmHWM from /proc/self/status — the process'
//    peak resident set, the number the O(live jobs) memory claim is about.
//  * reset_peak_rss() writes "5" to /proc/self/clear_refs so VmHWM restarts
//    from the *current* RSS; this lets one process measure several runs.
//    Needs a Linux kernel >= 4.0; returns false (and peak stays cumulative,
//    still a valid upper bound) where unsupported.
//  * allocation_count() counts global operator new calls when the including
//    binary defines PJSCHED_ENABLE_ALLOC_PROBE before including this header
//    (exactly one TU per binary — the operators are ODR-unique).  The
//    scaling benches divide the delta across a run by the job count: a
//    per-job quotient that stays flat across 10^4 -> 10^6 jobs is the
//    "no per-slice allocations in steady state" assertion in executable
//    form, since any per-slice or per-decision allocation would make the
//    quotient grow with the (jobs-proportional) slice count.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace pjsched::benchprobe {

/// Peak resident set size of this process in bytes (0 if unreadable).
inline std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Resets the peak-RSS watermark to the current RSS.  Returns false if the
/// kernel interface is unavailable (VmHWM then stays a process-lifetime
/// peak — conservative for any ceiling check).
inline bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

/// Global operator-new call counter.  Always linkable; only actually
/// incremented in binaries compiled with PJSCHED_ENABLE_ALLOC_PROBE.
inline std::atomic<std::uint64_t>& allocation_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::uint64_t allocation_count() {
  return allocation_counter().load(std::memory_order_relaxed);
}

}  // namespace pjsched::benchprobe

#ifdef PJSCHED_ENABLE_ALLOC_PROBE

#include <cstdlib>
#include <new>

namespace pjsched::benchprobe::detail {
inline void* counted_alloc(std::size_t size) {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
inline void* counted_alloc(std::size_t size, std::size_t align) {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace pjsched::benchprobe::detail

void* operator new(std::size_t size) {
  return pjsched::benchprobe::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return pjsched::benchprobe::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return pjsched::benchprobe::detail::counted_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return pjsched::benchprobe::detail::counted_alloc(
      size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // PJSCHED_ENABLE_ALLOC_PROBE
