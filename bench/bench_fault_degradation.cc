// Robustness harness: how do FIFO, BWF, and work stealing compare when the
// machine degrades mid-run?
//
// Section 1 (simulator): the same Bing-workload instance is scheduled under
// three machine profiles — fault-free, losing half the processors mid-run,
// and losing then recovering them — and the max/mean flow times are
// tabulated per scheduler.  The paper's guarantees assume a fixed (m, s)
// machine; this bench measures how gracefully each policy's max flow time
// degrades when that assumption breaks.  FIFO/BWF run on the event engine
// (exact processor/speed changes); work stealing runs on the step engine
// (fail-stop workers, lowest indices survive, in-flight work is lost and
// recovered by stealing).
//
// Section 2 (real runtime): a ThreadPool with injected task failures, a
// stalled worker, per-job deadlines, and a bounded shed-oldest admission
// queue — demonstrating that overload + faults degrade into counted
// outcomes (failed / deadline-expired / shed) instead of hangs or crashes.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/run.h"
#include "src/core/types.h"
#include "src/metrics/table.h"
#include "src/runtime/dag_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace {

using namespace pjsched;

struct Args {
  std::size_t jobs = 2000;
  std::uint64_t seed = 42;
  bool csv = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<std::size_t>(std::stoull(arg.substr(7)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(arg.substr(7));
    } else if (arg == "--csv") {
      args.csv = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--jobs=N] [--seed=S] [--csv]\n";
      std::exit(2);
    }
  }
  return args;
}

void run_simulated(const Args& args) {
  workload::GeneratorConfig gen;
  gen.num_jobs = args.jobs;
  gen.qps = 700.0;  // medium utilization on m = 16 (see bench_fig2_bing)
  gen.units_per_ms = 100.0;
  gen.seed = args.seed;
  const workload::DiscreteWorkDistribution dist(workload::bing_distribution());
  const core::Instance inst = workload::generate_instance(dist, gen);

  // Degradation times relative to the arrival horizon, in work units.
  const double horizon =
      static_cast<double>(args.jobs) / gen.qps * 1000.0 * gen.units_per_ms;
  const core::MachineConfig healthy{16, 1.0, {}};
  const core::MachineConfig half_loss{
      16, 1.0, {{horizon * 0.5, 8, 1.0}}};
  const core::MachineConfig lose_recover{
      16, 1.0, {{horizon / 3.0, 8, 1.0}, {horizon * 2.0 / 3.0, 16, 1.0}}};
  const std::vector<std::pair<const char*, const core::MachineConfig*>>
      scenarios = {{"healthy", &healthy},
                   {"half-loss", &half_loss},
                   {"lose-recover", &lose_recover}};
  const std::vector<std::string> schedulers = {"fifo", "bwf",
                                               "steal-16-first"};

  std::cout << "# fault degradation — workload 'bing', m=16 with mid-run "
               "processor loss, jobs="
            << args.jobs << ", seed=" << args.seed << "\n"
            << "# half-loss: m 16->8 at 50% of the arrival horizon; "
               "lose-recover: 16->8 at 1/3, back to 16 at 2/3\n";
  metrics::Table table({"scenario", "scheduler", "max_flow_ms",
                        "mean_flow_ms", "makespan_ms"});
  for (const auto& [label, machine] : scenarios) {
    for (const std::string& name : schedulers) {
      auto spec = core::parse_scheduler(name);
      spec.seed = args.seed;
      const auto res = core::run_scheduler(inst, spec, *machine);
      table.add_row({label, res.scheduler_name,
                     metrics::Table::cell(res.max_flow / gen.units_per_ms),
                     metrics::Table::cell(res.mean_flow / gen.units_per_ms),
                     metrics::Table::cell(res.makespan / gen.units_per_ms)});
    }
  }
  if (args.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

void run_real_runtime(const Args& args) {
  using namespace std::chrono_literals;
  const std::size_t jobs = std::min<std::size_t>(args.jobs, 400);

  runtime::PoolOptions options;
  options.workers = 4;
  options.steal_k = 16;
  options.seed = args.seed;
  options.admission_capacity = 32;
  options.backpressure = runtime::BackpressurePolicy::kShedOldest;
  options.fault_plan.seed = args.seed;
  options.fault_plan.task_failure_probability = 0.01;
  options.fault_plan.worker_stalls = {{/*worker=*/3, /*stall=*/200us}};

  runtime::ThreadPool pool(options);
  for (std::size_t j = 0; j < jobs; ++j) {
    // Paced arrivals: fast enough to overload the stalled pool at times
    // (exercising shed-oldest), slow enough that most jobs complete.
    std::this_thread::sleep_for(60us);
    runtime::SubmitOptions submit;
    // Every 4th job carries a tight deadline some of which will expire
    // under the induced overload.
    if (j % 4 == 0) submit.deadline = 2ms;
    pool.submit(
        [](runtime::TaskContext& ctx) {
          if (ctx.cancelled()) return;
          runtime::spin_for_units(20, /*ns_per_unit=*/2000.0);
          runtime::parallel_for(ctx, 0, 8, 1, [](std::size_t, std::size_t) {
            runtime::spin_for_units(10, /*ns_per_unit=*/2000.0);
          });
        },
        submit);
  }
  pool.wait_all();
  const auto counts = pool.recorder().outcome_counts();
  const auto stats = pool.stats();
  pool.shutdown();

  std::cout << "\n# real runtime under faults — " << jobs
            << " jobs, 4 workers (one stalled), 1% injected task failures,\n"
            << "# deadlines on every 4th job, admission capacity 32 "
               "(shed-oldest)\n";
  metrics::Table table({"outcome", "jobs"});
  table.add_row({"completed", metrics::Table::cell(counts.completed)});
  table.add_row({"failed", metrics::Table::cell(counts.failed)});
  table.add_row(
      {"deadline-expired", metrics::Table::cell(counts.deadline_expired)});
  table.add_row({"shed", metrics::Table::cell(counts.shed)});
  table.add_row({"rejected", metrics::Table::cell(counts.rejected)});
  if (args.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "# faults injected: " << stats.faults_injected
            << ", tasks cancelled: " << stats.tasks_cancelled
            << ", max flow over completed: "
            << pool.recorder().max_flow_seconds() * 1000.0 << " ms\n";
  if (counts.total() != jobs) {
    std::cerr << "bench_fault_degradation: outcome counts do not cover all "
                 "jobs\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  run_simulated(args);
  run_real_runtime(args);
  return 0;
}
