// Ingest-path benchmarks: jobs/sec from raw feed bytes into the tenant
// router, at three depths of the stack.
//
//   BM_IngestParseAdmit   in-process hot loop — IngestBuffer::parse over a
//                         precomposed byte stream, admit_batch, paired pops.
//                         The armed alloc probe divides operator-new calls
//                         by jobs: the <= 1 alloc/job ingest-path gate in
//                         executable form (tools/check_ingest_smoke.py
//                         enforces it from the JSON in release CI).
//   BM_IngestPerLine      the same stream through the per-line path
//                         (parse_record + per-job push) — the before side
//                         of the batching comparison.
//   BM_IngestSocket/I/C   end to end: a Daemon with I io shards fed over C
//                         loopback TCP connections, manual-timed from first
//                         byte written to the last record counted by the
//                         daemon.  The io-threads x connections grid feeds
//                         the `ingest` section of BENCH_sim.json
//                         (tools/make_bench_baseline.py --ingest), whose
//                         single-loop -> sharded scaling claim carries the
//                         1-CPU caveat on serialized hosts.
//
//   bench_ingest --benchmark_filter=Ingest
#define PJSCHED_ENABLE_ALLOC_PROBE
#include <benchmark/benchmark.h>

#include "bench/rss_probe.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/service/daemon.h"
#include "src/service/record.h"
#include "src/service/stream_feed.h"
#include "src/service/tenant_router.h"

namespace {

using namespace pjsched::service;  // NOLINT

constexpr std::size_t kShards = 8;
constexpr std::size_t kCapacity = 1 << 16;
constexpr std::size_t kBatchEntries = 256;
constexpr std::size_t kFeedRecords = 4096;
constexpr std::size_t kFeedTenants = 16;

/// A realistic feed chunk: kFeedRecords short job lines over a handful of
/// tenants (names short enough for SSO, like real tenant ids).
const std::string& feed_bytes() {
  static const std::string* feed = [] {
    auto* s = new std::string;
    for (std::size_t i = 0; i < kFeedRecords; ++i) {
      *s += "job t" + std::to_string(i % kFeedTenants) + " " +
            std::to_string(1 + i % 4) + "\n";
    }
    return s;
  }();
  return *feed;
}

RouterConfig router_config() {
  RouterConfig config;
  config.shards = kShards;
  config.capacity = kCapacity;
  return config;
}

/// One pass of the zero-copy pipeline over the feed: chunked deposits into
/// the IngestBuffer, batched parse, batched admission, paired pops (depth
/// returns to zero, so every iteration measures the same path).  Returns
/// the number of records admitted or shed.
std::size_t parse_admit_pass(const std::string& feed, IngestBuffer& buffer,
                             TenantRouter& router,
                             std::vector<ParsedRecord>& parsed,
                             std::vector<JobRecord>& batch,
                             std::vector<TenantRouter::BatchOutcome>& outcomes,
                             std::vector<ShedRecord>& evictions,
                             TenantRouter::BatchScratch& scratch) {
  std::size_t jobs = 0;
  std::size_t off = 0;
  while (off < feed.size()) {
    const std::size_t chunk =
        std::min(buffer.tail_capacity(), feed.size() - off);
    std::memcpy(buffer.tail(), feed.data() + off, chunk);
    buffer.commit(chunk);
    off += chunk;
    for (;;) {
      const BatchParse bp = buffer.parse({parsed.data(), parsed.size()});
      if (bp.produced == 0 && bp.consumed == 0) break;
      batch.clear();
      for (std::size_t i = 0; i < bp.produced; ++i) {
        if (parsed[i].status == ParseStatus::kRecord)
          batch.push_back(std::move(parsed[i].record));
      }
      jobs += batch.size();
      router.admit_batch({batch.data(), batch.size()}, &outcomes, &evictions,
                         &scratch);
    }
  }
  QueuedRecord popped;
  while (router.try_pop(&popped)) {
  }
  return jobs;
}

/// Zero-copy batched parse + batched admission, with the alloc probe
/// reporting steady-state allocations per job.
void BM_IngestParseAdmit(benchmark::State& state) {
  const std::string& feed = feed_bytes();
  TenantRouter router(router_config());
  IngestBuffer buffer(kMaxLineBytes);
  std::vector<ParsedRecord> parsed(kBatchEntries);
  std::vector<JobRecord> batch;
  std::vector<TenantRouter::BatchOutcome> outcomes;
  std::vector<ShedRecord> evictions;
  TenantRouter::BatchScratch scratch;

  // Warm every reusable buffer (vector capacities, per-slot tenant
  // strings) so the probe sees the steady state, not setup.
  parse_admit_pass(feed, buffer, router, parsed, batch, outcomes, evictions,
                   scratch);
  const std::uint64_t allocs_before = pjsched::benchprobe::allocation_count();

  std::size_t jobs = 0;
  for (auto _ : state) {
    jobs += parse_admit_pass(feed, buffer, router, parsed, batch, outcomes,
                             evictions, scratch);
  }

  const std::uint64_t allocs =
      pjsched::benchprobe::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["allocs_per_job"] =
      jobs > 0 ? static_cast<double>(allocs) / static_cast<double>(jobs) : 0.0;
}
BENCHMARK(BM_IngestParseAdmit);

/// The pre-batching shape: one std::string line at a time through
/// parse_record, one router-shard lock per job.
void BM_IngestPerLine(benchmark::State& state) {
  const std::string& feed = feed_bytes();
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < feed.size(); ++i) {
    if (feed[i] == '\n') {
      lines.emplace_back(feed, start, i - start);
      start = i + 1;
    }
  }
  TenantRouter router(router_config());
  std::vector<ShedRecord> evictions;

  std::size_t jobs = 0;
  for (auto _ : state) {
    for (const std::string& line : lines) {
      JobRecord record;
      std::string error;
      if (parse_record(line, &record, &error) == ParseStatus::kRecord) {
        ShedReason reason{};
        router.push(std::move(record), &evictions, &reason);
        ++jobs;
      }
    }
    QueuedRecord popped;
    while (router.try_pop(&popped)) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_IngestPerLine);

/// End to end over real loopback sockets: io-threads (arg 0) x connections
/// (arg 1).  Each manual-timed iteration writes a fixed record count split
/// across the persistent connections and waits until the daemon has
/// counted them all; the untimed tail lets the router drain back below the
/// shed threshold so iterations measure admission, not eviction.
void BM_IngestSocket(benchmark::State& state) {
  const auto io_threads = static_cast<std::size_t>(state.range(0));
  const auto connections = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kPerIteration = 4096;

  DaemonConfig config;
  config.pool.workers = 2;
  config.pool.watchdog_interval = std::chrono::milliseconds(0);
  config.router.shards = kShards;
  config.router.capacity = kCapacity;
  config.tcp_port = 0;
  config.io_threads = io_threads;
  config.max_connections = connections + 4;
  config.ns_per_unit = 1.0;  // execution is not what this bench measures
  Daemon daemon(config);

  std::vector<int> fds(connections, -1);
  for (std::size_t i = 0; i < connections; ++i) {
    std::string error;
    fds[i] = connect_tcp("127.0.0.1",
                         static_cast<std::uint16_t>(daemon.tcp_port()),
                         &error);
    if (fds[i] < 0) {
      state.SkipWithError(("connect: " + error).c_str());
      return;
    }
  }

  // Per-connection payloads, composed once: kPerIteration records split
  // evenly (the first `extra` connections take one more).
  std::vector<std::string> payloads(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    const std::size_t count =
        kPerIteration / connections + (i < kPerIteration % connections ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) {
      payloads[i] += "job t" + std::to_string((i + k) % kFeedTenants) + " " +
                     std::to_string(1 + k % 4) + "\n";
    }
  }

  std::uint64_t expected = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> writers;
      writers.reserve(connections);
      for (std::size_t i = 0; i < connections; ++i) {
        writers.emplace_back(
            [&, i] { write_all(fds[i], payloads[i]); });
      }
      for (auto& w : writers) w.join();
    }
    expected += kPerIteration;
    while (daemon.snapshot().feed.records < expected)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    state.SetIterationTime(elapsed.count());
    // Untimed: drain the backlog below half capacity so the next
    // iteration's arrivals are admitted, not fair-share-evicted.
    while (daemon.snapshot().router.depth > kCapacity / 2)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  for (const int fd : fds) close_fd(fd);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPerIteration));
  state.counters["io_threads"] = static_cast<double>(io_threads);
  state.counters["connections"] = static_cast<double>(connections);
}
BENCHMARK(BM_IngestSocket)
    ->UseManualTime()
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({4, 8});

}  // namespace

#include "bench/gbench_main.h"
