// Micro-benchmarks (google-benchmark) for the threaded work-stealing
// runtime: Chase-Lev deque operations, spawn/join overhead, parallel_for
// dispatch, and end-to-end job submission throughput under both admission
// policies.  These quantify the overheads the paper argues are what make
// distributed work stealing preferable to a centralized FIFO in practice.
#include <benchmark/benchmark.h>

#include <atomic>

#include "src/runtime/chase_lev_deque.h"
#include "src/runtime/thread_pool.h"

namespace {

using namespace pjsched::runtime;

void BM_DequePushPop(benchmark::State& state) {
  ChaseLevDeque<std::intptr_t> deque;
  std::intptr_t v = 0;
  for (auto _ : state) {
    deque.push(1);
    benchmark::DoNotOptimize(deque.pop(v));
  }
}
BENCHMARK(BM_DequePushPop);

void BM_DequePushSteal(benchmark::State& state) {
  ChaseLevDeque<std::intptr_t> deque;
  std::intptr_t v = 0;
  for (auto _ : state) {
    deque.push(1);
    benchmark::DoNotOptimize(deque.steal(v));
  }
}
BENCHMARK(BM_DequePushSteal);

void BM_DequeBulkCycle(benchmark::State& state) {
  const auto batch = static_cast<std::intptr_t>(state.range(0));
  ChaseLevDeque<std::intptr_t> deque;
  std::intptr_t v = 0;
  for (auto _ : state) {
    for (std::intptr_t i = 0; i < batch; ++i) deque.push(i);
    for (std::intptr_t i = 0; i < batch; ++i)
      benchmark::DoNotOptimize(deque.pop(v));
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_DequeBulkCycle)->Arg(64)->Arg(1024);

void BM_SpawnJoin(benchmark::State& state) {
  const auto spawns = static_cast<int>(state.range(0));
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 1});
  std::atomic<int> sink{0};
  for (auto _ : state) {
    auto job = pool.submit([&, spawns](TaskContext& ctx) {
      WaitGroup wg;
      for (int i = 0; i < spawns; ++i)
        ctx.spawn([&](TaskContext&) { sink.fetch_add(1); }, wg);
      ctx.wait_help(wg);
    });
    job->wait();
  }
  state.SetItemsProcessed(state.iterations() * spawns);
}
BENCHMARK(BM_SpawnJoin)->Arg(16)->Arg(256);

void BM_ParallelFor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 2});
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    auto job = pool.submit([&, n](TaskContext& ctx) {
      parallel_for(ctx, 0, n, 64, [&](std::size_t lo, std::size_t hi) {
        std::uint64_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += i;
        sink.fetch_add(local);
      });
    });
    job->wait();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelFor)->Arg(1024)->Arg(16384);

void BM_SubmitThroughputAdmitFirst(benchmark::State& state) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 3});
  std::atomic<int> sink{0};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      pool.submit([&](TaskContext&) { sink.fetch_add(1); });
    pool.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SubmitThroughputAdmitFirst);

void BM_SubmitThroughputStealK(benchmark::State& state) {
  ThreadPool pool({.workers = 2, .steal_k = 16, .seed = 4});
  std::atomic<int> sink{0};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      pool.submit([&](TaskContext&) { sink.fetch_add(1); });
    pool.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SubmitThroughputStealK);

}  // namespace

#include "bench/gbench_main.h"
